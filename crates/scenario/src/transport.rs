//! The process-transport wire protocol and worker entry point.
//!
//! The [coordinator](crate::coordinator) can run its fleet either as
//! in-process threads or as supervised **child processes** that self-exec
//! the current binary (see [`maybe_run_process_worker`]) and speak a
//! versioned, length-prefixed binary frame protocol over stdin/stdout.
//! This module owns that seam: the frame codec, the typed
//! [`TransportError`] taxonomy, the `ScenarioSpec` a scenario ships to
//! a worker process, the worker-side loop (`run_stdio_worker`), and the
//! `WorkerTransport` abstraction the coordinator drives — implemented
//! by the in-process thread transport in `coordinator` and by the
//! process supervisor in `supervisor`.
//!
//! # Frame format
//!
//! ```text
//! "MLFW" | version u16 LE | frame type u8 | payload length u32 LE | payload | fnv1a u64 LE
//! ```
//!
//! The trailing checksum is FNV-1a over *everything* before it (header
//! included), so a flipped bit anywhere in a frame is detected. Payloads
//! reuse the canonical 66-byte point encoding
//! ([`crate::checkpoint::encode_point`]) — a point crosses the process
//! boundary in exactly the bytes the shard hashes and the checkpoint file
//! speak, which is what keeps the process transport inside the bitwise
//! differential.
//!
//! # Error taxonomy and resync
//!
//! [`TransportError`] distinguishes damage classes because they demand
//! different reactions: a [`ChecksumMismatch`](TransportError::ChecksumMismatch)
//! or [`UnknownFrameType`](TransportError::UnknownFrameType) arrives on an
//! intact *framing* layer (magic, version, and length were all read), so
//! the reader can skip the frame and resync on the next one — the worker
//! answers with a `Reject` frame and the coordinator requeues. Truncation,
//! bad magic, and version skew mean the stream itself cannot be trusted;
//! the worker exits and the supervisor respawns it.
//!
//! # Determinism
//!
//! A worker process computes points with the same pure
//! `sweep_point_with` the threads use, over a `ScenarioSpec` that
//! round-trips every solve-relevant knob (scenarios that *cannot* be
//! shipped faithfully — fixed networks, explicit per-session link-rate
//! configs, unregistered allocators — are rejected up front with
//! [`CoordinatorError::UnsupportedScenario`](crate::coordinator::CoordinatorError::UnsupportedScenario)
//! rather than approximated). Fault injection riding the same seeded
//! [`FaultPlan`] on both sides keeps chaos runs reproducible.

use crate::cache::SolveCache;
use crate::checkpoint::{
    decode_point, encode_point, model_code, model_from_code, shard_content_hash, POINT_BYTES,
};
use crate::coordinator::{Assignment, FaultEvent, FaultKind, FaultPlan, Job, TaskId, WorkerReport};
use crate::hash::Fnv1a;
use crate::spill::SpillStats;
use crate::{LinkRates, NetworkSource, Scenario, SweepPoint};
use mlf_core::allocator::{
    Allocator, Hybrid, MultiRate, SingleRate, SolverWorkspace, Unicast, Weighted,
};
use mlf_core::LinkRateModel;
use mlf_net::TopologyFamily;
use std::io::{Read, Write};
use std::path::PathBuf;
use std::time::Duration;

/// Magic prefix of every frame.
// mlf-lint: allow(unused-pub, reason = "documented wire-protocol surface; referenced by ARCHITECTURE.md")
pub const MAGIC: [u8; 4] = *b"MLFW";

/// Protocol version spoken (and required) by this build. A coordinator
/// and a worker from different protocol generations refuse each other
/// with [`TransportError::VersionSkew`] instead of misparsing.
// mlf-lint: allow(unused-pub, reason = "documented wire-protocol surface; referenced by ARCHITECTURE.md")
pub const PROTOCOL_VERSION: u16 = 1;

/// Frame header bytes: magic (4) + version (2) + type (1) + payload
/// length (4).
pub(crate) const HEADER_BYTES: usize = 11;

/// Upper bound on a frame payload; a length field beyond this is treated
/// as malformed rather than allocated.
const MAX_PAYLOAD: usize = 64 << 20;

const FRAME_INIT: u8 = 1;
const FRAME_ASSIGN: u8 = 2;
const FRAME_REPORT: u8 = 3;
const FRAME_REJECT: u8 = 4;
const FRAME_SHUTDOWN: u8 = 5;

/// Environment marker a worker child process is launched with.
pub(crate) const WORKER_ENV: &str = "MLF_PROCESS_WORKER";
/// Argument marker a worker child process is launched with (cosmetic —
/// the env var is what arms [`maybe_run_process_worker`], the argument
/// makes worker processes identifiable in `ps`).
pub(crate) const WORKER_ARG: &str = "--mlf-process-worker";

/// Why a frame could not be read, written, or trusted.
// mlf-lint: allow(unused-pub, reason = "carried by CoordinatorError::Transport so callers can match on launch failures")
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The stream ended mid-frame.
    Truncated {
        /// Bytes the frame needed.
        expected: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// The frame does not start with [`MAGIC`].
    BadMagic {
        /// The four bytes found instead.
        got: [u8; 4],
    },
    /// The peer speaks a different protocol generation.
    VersionSkew {
        /// The version on the wire.
        wire: u16,
        /// The version this build supports.
        supported: u16,
    },
    /// The frame checksum did not verify (bytes were damaged in flight).
    ChecksumMismatch {
        /// The checksum stored in the frame.
        stored: u64,
        /// The checksum computed over the received bytes.
        computed: u64,
    },
    /// An intact frame of a type this build does not know.
    UnknownFrameType {
        /// The unknown type byte.
        tag: u8,
    },
    /// The frame payload did not decode as its type.
    Malformed {
        /// What was wrong.
        reason: String,
    },
    /// An OS-level read or write failed.
    Io {
        /// The operation that failed.
        op: &'static str,
        /// The OS error, stringified.
        message: String,
    },
}

impl TransportError {
    /// Whether the framing layer stayed intact (the reader consumed a
    /// whole frame and can continue with the next one). See the
    /// [module docs](self) on resync.
    pub(crate) fn resyncable(&self) -> bool {
        matches!(
            self,
            TransportError::ChecksumMismatch { .. }
                | TransportError::UnknownFrameType { .. }
                | TransportError::Malformed { .. }
        )
    }
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Truncated { expected, got } => {
                write!(f, "frame truncated: needed {expected} bytes, got {got}")
            }
            TransportError::BadMagic { got } => {
                write!(f, "bad frame magic {got:02x?}")
            }
            TransportError::VersionSkew { wire, supported } => write!(
                f,
                "protocol version skew: wire speaks v{wire}, this build supports v{supported}"
            ),
            TransportError::ChecksumMismatch { stored, computed } => write!(
                f,
                "frame checksum mismatch: stored 0x{stored:016x}, computed 0x{computed:016x}"
            ),
            TransportError::UnknownFrameType { tag } => {
                write!(f, "unknown frame type {tag}")
            }
            TransportError::Malformed { reason } => {
                write!(f, "malformed frame payload: {reason}")
            }
            TransportError::Io { op, message } => {
                write!(f, "transport {op} failed: {message}")
            }
        }
    }
}

impl std::error::Error for TransportError {}

// ---------------------------------------------------------------------------
// Frames
// ---------------------------------------------------------------------------

/// One message of the coordinator ↔ worker-process protocol.
#[derive(Debug, Clone)]
pub(crate) enum Frame {
    /// Coordinator → worker, once per process: who you are and what
    /// scenario you compute.
    Init(WorkerInit),
    /// Coordinator → worker: compute one shard or spot check.
    Assign(Assignment),
    /// Worker → coordinator: a computed shard or spot check.
    Report(WorkerReport),
    /// Worker → coordinator: the last frame could not be honored (damaged
    /// in flight, or arrived out of protocol); the sender should requeue.
    Reject {
        /// Why the frame was rejected.
        message: String,
    },
    /// Coordinator → worker: drain and exit cleanly.
    Shutdown,
}

/// Everything a freshly spawned worker process needs before its first
/// assignment.
#[derive(Debug, Clone)]
pub(crate) struct WorkerInit {
    /// The worker's slot index in the fleet.
    pub(crate) worker: usize,
    /// How long a [`FaultKind::Stall`] sleeps.
    pub(crate) stall: Duration,
    /// The worker's spill segment path, when disk spill is enabled.
    pub(crate) spill: Option<PathBuf>,
    /// The seeded fault schedule (workers self-inject compute-side
    /// faults; the supervisor injects wire-side faults).
    pub(crate) plan: FaultPlan,
    /// The scenario to rebuild and compute.
    pub(crate) spec: ScenarioSpec,
}

/// The shippable identity of a scenario: every knob that can change a
/// sweep point's bytes, in a form a worker process can rebuild with
/// [`ScenarioSpec::build_scenario`]. Produced by `Scenario::process_spec`,
/// which rejects scenarios that cannot be shipped faithfully.
#[derive(Debug, Clone)]
pub(crate) struct ScenarioSpec {
    pub(crate) label: String,
    pub(crate) family: TopologyFamily,
    pub(crate) nodes: usize,
    pub(crate) sessions: usize,
    pub(crate) max_receivers: usize,
    /// `None` = [`LinkRates::Efficient`], `Some(m)` = uniform model `m`.
    pub(crate) link_model: Option<LinkRateModel>,
    pub(crate) allocator: AllocatorCode,
    pub(crate) check_properties: bool,
    pub(crate) cache_points: usize,
    pub(crate) cache_networks: usize,
}

/// The registry of allocator configurations the process transport can
/// ship by name. Membership is decided by *signature equality*: a
/// scenario's allocator maps to a code only if a fresh instance of that
/// registry entry states the identical
/// [`cache_signature`](Allocator::cache_signature), so a worker process
/// provably rebuilds the same solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AllocatorCode {
    MultiRate,
    SingleRate,
    HybridDeclared,
    WeightedUniform,
    Unicast,
}

impl AllocatorCode {
    const ALL: [AllocatorCode; 5] = [
        AllocatorCode::MultiRate,
        AllocatorCode::SingleRate,
        AllocatorCode::HybridDeclared,
        AllocatorCode::WeightedUniform,
        AllocatorCode::Unicast,
    ];

    fn instantiate(self) -> Box<dyn Allocator> {
        match self {
            AllocatorCode::MultiRate => Box::new(MultiRate::new()),
            AllocatorCode::SingleRate => Box::new(SingleRate::new()),
            AllocatorCode::HybridDeclared => Box::new(Hybrid::as_declared()),
            AllocatorCode::WeightedUniform => Box::new(Weighted::uniform()),
            AllocatorCode::Unicast => Box::new(Unicast::new()),
        }
    }
}

fn allocator_code(a: &dyn Allocator) -> Option<AllocatorCode> {
    let sig = a.cache_signature()?;
    AllocatorCode::ALL
        .into_iter()
        .find(|code| code.instantiate().cache_signature().as_deref() == Some(sig.as_str()))
}

impl ScenarioSpec {
    /// Rebuild the scenario this spec describes (worker-process side).
    pub(crate) fn build_scenario(&self) -> Result<Scenario, String> {
        let builder = Scenario::builder()
            .label(self.label.clone())
            .random_networks_with(self.family, self.nodes, self.sessions, self.max_receivers)
            .link_rates(match self.link_model {
                None => LinkRates::Efficient,
                Some(m) => LinkRates::Uniform(m),
            })
            .check_properties(self.check_properties)
            .cache_capacity(self.cache_points, self.cache_networks);
        let builder = match self.allocator {
            AllocatorCode::MultiRate => builder.allocator(MultiRate::new()),
            AllocatorCode::SingleRate => builder.allocator(SingleRate::new()),
            AllocatorCode::HybridDeclared => builder.allocator(Hybrid::as_declared()),
            AllocatorCode::WeightedUniform => builder.allocator(Weighted::uniform()),
            AllocatorCode::Unicast => builder.allocator(Unicast::new()),
        };
        builder.build().map_err(|e| e.to_string())
    }
}

impl Scenario {
    /// The `ScenarioSpec` a worker process rebuilds this scenario from,
    /// or the reason it cannot be shipped. Only scenarios whose every
    /// solve-relevant knob round-trips are eligible — anything else would
    /// silently break the bitwise differential, so it is rejected here.
    /// (Layering and reporting knobs never reach a sweep point's bytes —
    /// nothing outside the solve key and the scenario digest does — so
    /// they are not shipped.)
    pub(crate) fn process_spec(&self) -> Result<ScenarioSpec, String> {
        let NetworkSource::Random {
            family,
            nodes,
            sessions,
            max_receivers,
        } = &self.source
        else {
            return Err(
                "process transport needs a random-network scenario; a fixed network \
                 cannot be shipped to a worker process"
                    .to_string(),
            );
        };
        let link_model = match &self.link_rates {
            LinkRates::Efficient => None,
            LinkRates::Uniform(m) => Some(*m),
            LinkRates::Explicit(_) => {
                return Err(
                    "explicit per-session link-rate configs cannot be shipped to a \
                     worker process"
                        .to_string(),
                )
            }
        };
        let allocator = allocator_code(self.allocator.as_ref()).ok_or_else(|| {
            format!(
                "allocator {:?} is not in the process-transport registry \
                 (no registry entry states its cache signature)",
                self.allocator.name()
            )
        })?;
        Ok(ScenarioSpec {
            label: self.label.clone(),
            family: *family,
            nodes: *nodes,
            sessions: *sessions,
            max_receivers: *max_receivers,
            link_model,
            allocator,
            check_properties: self.check_properties,
            cache_points: self.cache_points,
            cache_networks: self.cache_networks,
        })
    }
}

// ---------------------------------------------------------------------------
// Payload codec
// ---------------------------------------------------------------------------

struct Enc(Vec<u8>);

impl Enc {
    fn new() -> Self {
        Enc(Vec::new())
    }
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn bytes(&mut self, b: &[u8]) {
        self.0.extend_from_slice(b);
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.bytes(s.as_bytes());
    }
    fn done(self) -> Vec<u8> {
        self.0
    }
}

struct Dec<'a>(&'a [u8]);

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.0.len() < n {
            return Err(format!(
                "payload needs {n} more bytes, has {}",
                self.0.len()
            ));
        }
        let (head, rest) = self.0.split_at(n);
        self.0 = rest;
        Ok(head)
    }
    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, String> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn u64(&mut self) -> Result<u64, String> {
        let b = self.take(8)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(b);
        Ok(u64::from_le_bytes(raw))
    }
    fn str(&mut self) -> Result<String, String> {
        let len = self.u32()? as usize;
        let b = self.take(len)?;
        String::from_utf8(b.to_vec()).map_err(|_| "non-UTF-8 string".to_string())
    }
    fn finish(self) -> Result<(), String> {
        if self.0.is_empty() {
            Ok(())
        } else {
            Err(format!("{} trailing payload bytes", self.0.len()))
        }
    }
}

fn fault_code(kind: FaultKind) -> u8 {
    match kind {
        FaultKind::CrashWorker => 0,
        FaultKind::Stall => 1,
        FaultKind::CorruptHash => 2,
        FaultKind::DuplicateShard => 3,
        FaultKind::KillProcess => 4,
        FaultKind::TornFrame => 5,
    }
}

fn fault_from_code(code: u8) -> Result<FaultKind, String> {
    match code {
        0 => Ok(FaultKind::CrashWorker),
        1 => Ok(FaultKind::Stall),
        2 => Ok(FaultKind::CorruptHash),
        3 => Ok(FaultKind::DuplicateShard),
        4 => Ok(FaultKind::KillProcess),
        5 => Ok(FaultKind::TornFrame),
        t => Err(format!("unknown fault kind {t}")),
    }
}

fn task_code(task: TaskId) -> (u8, u64) {
    match task {
        TaskId::Shard(i) => (0, i),
        TaskId::Spot(i) => (1, i),
    }
}

fn task_from_code(kind: u8, index: u64) -> Result<TaskId, String> {
    match kind {
        0 => Ok(TaskId::Shard(index)),
        1 => Ok(TaskId::Spot(index)),
        t => Err(format!("unknown task kind {t}")),
    }
}

fn encode_init(e: &mut Enc, init: &WorkerInit) {
    e.u32(init.worker as u32);
    e.u64(init.stall.as_nanos() as u64);
    match &init.spill {
        None => e.u8(0),
        Some(p) => {
            e.u8(1);
            e.str(&p.to_string_lossy());
        }
    }
    e.u32(init.plan.events().len() as u32);
    for ev in init.plan.events() {
        e.u8(fault_code(ev.kind));
        e.u32(ev.worker as u32);
        e.u64(ev.shard);
    }
    let spec = &init.spec;
    e.str(&spec.label);
    let (ftag, fparam): (u8, u64) = match spec.family {
        TopologyFamily::FlatTree => (0, 0),
        TopologyFamily::KaryTree { arity } => (1, arity as u64),
        TopologyFamily::TransitStub { transit } => (2, transit as u64),
        TopologyFamily::Dumbbell => (3, 0),
    };
    e.u8(ftag);
    e.u64(fparam);
    e.u64(spec.nodes as u64);
    e.u64(spec.sessions as u64);
    e.u64(spec.max_receivers as u64);
    let (mtag, mbits) = model_code(spec.link_model);
    e.u8(mtag);
    e.u64(mbits);
    e.u8(fault_code_allocator(spec.allocator));
    e.u8(u8::from(spec.check_properties));
    e.u64(spec.cache_points as u64);
    e.u64(spec.cache_networks as u64);
}

fn fault_code_allocator(code: AllocatorCode) -> u8 {
    match code {
        AllocatorCode::MultiRate => 0,
        AllocatorCode::SingleRate => 1,
        AllocatorCode::HybridDeclared => 2,
        AllocatorCode::WeightedUniform => 3,
        AllocatorCode::Unicast => 4,
    }
}

fn allocator_from_code(code: u8) -> Result<AllocatorCode, String> {
    match code {
        0 => Ok(AllocatorCode::MultiRate),
        1 => Ok(AllocatorCode::SingleRate),
        2 => Ok(AllocatorCode::HybridDeclared),
        3 => Ok(AllocatorCode::WeightedUniform),
        4 => Ok(AllocatorCode::Unicast),
        t => Err(format!("unknown allocator code {t}")),
    }
}

fn decode_init(payload: &[u8]) -> Result<WorkerInit, String> {
    let mut d = Dec(payload);
    let worker = d.u32()? as usize;
    let stall = Duration::from_nanos(d.u64()?);
    let spill = match d.u8()? {
        0 => None,
        1 => Some(PathBuf::from(d.str()?)),
        t => return Err(format!("unknown spill tag {t}")),
    };
    let nevents = d.u32()? as usize;
    let mut events = Vec::with_capacity(nevents);
    for _ in 0..nevents {
        let kind = fault_from_code(d.u8()?)?;
        let worker = d.u32()? as usize;
        let shard = d.u64()?;
        events.push(FaultEvent {
            kind,
            worker,
            shard,
        });
    }
    let label = d.str()?;
    let ftag = d.u8()?;
    let fparam = d.u64()?;
    let family = match ftag {
        0 => TopologyFamily::FlatTree,
        1 => TopologyFamily::KaryTree {
            arity: fparam as usize,
        },
        2 => TopologyFamily::TransitStub {
            transit: fparam as usize,
        },
        3 => TopologyFamily::Dumbbell,
        t => return Err(format!("unknown family tag {t}")),
    };
    let nodes = d.u64()? as usize;
    let sessions = d.u64()? as usize;
    let max_receivers = d.u64()? as usize;
    let mtag = d.u8()?;
    let mbits = d.u64()?;
    let link_model = model_from_code(mtag, mbits)?;
    let allocator = allocator_from_code(d.u8()?)?;
    let check_properties = d.u8()? != 0;
    let cache_points = d.u64()? as usize;
    let cache_networks = d.u64()? as usize;
    d.finish()?;
    Ok(WorkerInit {
        worker,
        stall,
        spill,
        plan: FaultPlan::from_events(events),
        spec: ScenarioSpec {
            label,
            family,
            nodes,
            sessions,
            max_receivers,
            link_model,
            allocator,
            check_properties,
            cache_points,
            cache_networks,
        },
    })
}

fn encode_assign(e: &mut Enc, a: &Assignment) {
    let (tkind, tindex) = task_code(a.task);
    e.u8(tkind);
    e.u64(tindex);
    e.u32(a.attempt);
    e.u64(a.shard);
    e.u64(a.start);
    e.u32(a.jobs.len() as u32);
    for &(model, seed) in &a.jobs {
        let (tag, bits) = model_code(model);
        e.u8(tag);
        e.u64(bits);
        e.u64(seed);
    }
}

fn decode_assign(payload: &[u8]) -> Result<Assignment, String> {
    let mut d = Dec(payload);
    let tkind = d.u8()?;
    let tindex = d.u64()?;
    let task = task_from_code(tkind, tindex)?;
    let attempt = d.u32()?;
    let shard = d.u64()?;
    let start = d.u64()?;
    let njobs = d.u32()? as usize;
    let mut jobs: Vec<Job> = Vec::with_capacity(njobs);
    for _ in 0..njobs {
        let tag = d.u8()?;
        let bits = d.u64()?;
        let seed = d.u64()?;
        jobs.push((model_from_code(tag, bits)?, seed));
    }
    d.finish()?;
    Ok(Assignment {
        task,
        attempt,
        shard,
        start,
        jobs,
    })
}

fn encode_report(e: &mut Enc, r: &WorkerReport) {
    e.u32(r.worker as u32);
    let (tkind, tindex) = task_code(r.task);
    e.u8(tkind);
    e.u64(tindex);
    e.u32(r.attempt);
    e.u64(r.hash);
    e.u64(r.spill.hits);
    e.u64(r.spill.misses);
    e.u64(r.spill.spilled);
    e.u64(r.spill.corrupt_segments);
    e.u32(r.points.len() as u32);
    for p in &r.points {
        e.bytes(&encode_point(p));
    }
}

fn decode_report(payload: &[u8]) -> Result<WorkerReport, String> {
    let mut d = Dec(payload);
    let worker = d.u32()? as usize;
    let tkind = d.u8()?;
    let tindex = d.u64()?;
    let task = task_from_code(tkind, tindex)?;
    let attempt = d.u32()?;
    let hash = d.u64()?;
    let spill = SpillStats {
        hits: d.u64()?,
        misses: d.u64()?,
        spilled: d.u64()?,
        corrupt_segments: d.u64()?,
    };
    let npoints = d.u32()? as usize;
    let mut points = Vec::with_capacity(npoints);
    for _ in 0..npoints {
        points.push(decode_point(d.take(POINT_BYTES)?)?);
    }
    d.finish()?;
    Ok(WorkerReport {
        worker,
        task,
        attempt,
        points,
        hash,
        spill,
    })
}

// ---------------------------------------------------------------------------
// Frame IO
// ---------------------------------------------------------------------------

/// Serialize one frame: header, payload, trailing checksum.
pub(crate) fn frame_bytes(frame: &Frame) -> Vec<u8> {
    let mut e = Enc::new();
    let tag = match frame {
        Frame::Init(init) => {
            encode_init(&mut e, init);
            FRAME_INIT
        }
        Frame::Assign(a) => {
            encode_assign(&mut e, a);
            FRAME_ASSIGN
        }
        Frame::Report(r) => {
            encode_report(&mut e, r);
            FRAME_REPORT
        }
        Frame::Reject { message } => {
            e.str(message);
            FRAME_REJECT
        }
        Frame::Shutdown => FRAME_SHUTDOWN,
    };
    let payload = e.done();
    let mut out = Vec::with_capacity(HEADER_BYTES + payload.len() + 8);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    out.push(tag);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    let mut h = Fnv1a::new();
    h.write(&out);
    out.extend_from_slice(&h.finish().to_le_bytes());
    out
}

/// Write one frame and flush it.
pub(crate) fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> Result<(), TransportError> {
    w.write_all(&frame_bytes(frame))
        .and_then(|_| w.flush())
        .map_err(|e| TransportError::Io {
            op: "write",
            message: e.to_string(),
        })
}

fn read_full<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<usize, TransportError> {
    let mut got = 0usize;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => return Ok(got),
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => {
                return Err(TransportError::Io {
                    op: "read",
                    message: e.to_string(),
                })
            }
        }
    }
    Ok(got)
}

/// Read one frame. `Ok(None)` is a clean end of stream (EOF on a frame
/// boundary); EOF anywhere inside a frame is
/// [`TransportError::Truncated`]. Checksum and payload validation
/// failures consume the whole frame, so a
/// [resyncable](TransportError::resyncable) error leaves the reader on
/// the next frame boundary.
pub(crate) fn read_frame<R: Read>(r: &mut R) -> Result<Option<Frame>, TransportError> {
    let mut header = [0u8; HEADER_BYTES];
    let got = read_full(r, &mut header)?;
    if got == 0 {
        return Ok(None);
    }
    if got < HEADER_BYTES {
        return Err(TransportError::Truncated {
            expected: HEADER_BYTES,
            got,
        });
    }
    if header[0..4] != MAGIC {
        return Err(TransportError::BadMagic {
            got: [header[0], header[1], header[2], header[3]],
        });
    }
    let version = u16::from_le_bytes([header[4], header[5]]);
    if version != PROTOCOL_VERSION {
        return Err(TransportError::VersionSkew {
            wire: version,
            supported: PROTOCOL_VERSION,
        });
    }
    let tag = header[6];
    let len = u32::from_le_bytes([header[7], header[8], header[9], header[10]]) as usize;
    if len > MAX_PAYLOAD {
        return Err(TransportError::Malformed {
            reason: format!("payload length {len} exceeds the {MAX_PAYLOAD}-byte cap"),
        });
    }
    let mut rest = vec![0u8; len + 8];
    let got_rest = read_full(r, &mut rest)?;
    if got_rest < rest.len() {
        return Err(TransportError::Truncated {
            expected: HEADER_BYTES + len + 8,
            got: HEADER_BYTES + got_rest,
        });
    }
    let mut h = Fnv1a::new();
    h.write(&header);
    h.write(&rest[..len]);
    let computed = h.finish();
    let mut stored_raw = [0u8; 8];
    stored_raw.copy_from_slice(&rest[len..]);
    let stored = u64::from_le_bytes(stored_raw);
    if stored != computed {
        return Err(TransportError::ChecksumMismatch { stored, computed });
    }
    let payload = &rest[..len];
    let malformed = |reason: String| TransportError::Malformed { reason };
    let frame = match tag {
        FRAME_INIT => Frame::Init(decode_init(payload).map_err(malformed)?),
        FRAME_ASSIGN => Frame::Assign(decode_assign(payload).map_err(malformed)?),
        FRAME_REPORT => Frame::Report(decode_report(payload).map_err(malformed)?),
        FRAME_REJECT => {
            let mut d = Dec(payload);
            let message = d.str().map_err(malformed)?;
            d.finish().map_err(malformed)?;
            Frame::Reject { message }
        }
        FRAME_SHUTDOWN => {
            if !payload.is_empty() {
                return Err(TransportError::Malformed {
                    reason: format!("shutdown frame carries {} payload bytes", payload.len()),
                });
            }
            Frame::Shutdown
        }
        tag => return Err(TransportError::UnknownFrameType { tag }),
    };
    Ok(Some(frame))
}

// ---------------------------------------------------------------------------
// Coordinator-side transport abstraction
// ---------------------------------------------------------------------------

/// What one poll of a transport produced.
#[derive(Debug)]
pub(crate) enum TransportPoll {
    /// A worker delivered a computed task.
    Report(WorkerReport),
    /// A worker rejected its last assignment (damaged frame); requeue it.
    Rejected {
        /// The rejecting worker's slot.
        worker: usize,
    },
    /// A worker died; requeue whatever it was computing.
    Down {
        /// The dead worker's slot.
        worker: usize,
    },
    /// Nothing arrived within the wait.
    Timeout,
    /// Every worker is permanently gone (the coordinator should fall back
    /// to the serial path).
    AllDown,
}

/// Counters a transport accumulates on behalf of
/// [`CoordinatorStats`](crate::coordinator::CoordinatorStats).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct TransportCounters {
    /// Workers found dead (send failed, reader saw EOF, heartbeat blown).
    pub(crate) workers_lost: u64,
    /// Worker processes respawned after a death.
    pub(crate) respawns: u64,
}

/// The worker-fleet boundary the coordinator drives. Implemented by the
/// in-process thread transport (`coordinator`) and the supervised
/// process fleet (`supervisor`); the coordinator's event loop is generic
/// over this trait, which is what makes thread mode and process mode the
/// *same* scheduling code — and therefore the same merged bytes.
pub(crate) trait WorkerTransport {
    /// Fleet size (slot indices are `0..worker_count()`).
    fn worker_count(&self) -> usize;
    /// Whether a slot can still (eventually) take work. A dead-but-
    /// respawnable process worker is usable; an exhausted one is not.
    fn usable(&self, worker: usize) -> bool;
    /// Try to hand `assignment` to `worker`. `false` means the worker
    /// cannot take it right now (busy respawning, channel gone); the
    /// coordinator will try another worker or wait.
    fn try_send(&mut self, worker: usize, assignment: &Assignment) -> bool;
    /// Wait up to `wait` for the next fleet event.
    fn recv_timeout(&mut self, wait: Duration) -> TransportPoll;
    /// Begin a clean shutdown (workers told to drain and exit; process
    /// children reaped).
    fn shutdown(&mut self);
    /// The counters accumulated so far.
    fn counters(&self) -> TransportCounters;
}

// ---------------------------------------------------------------------------
// Worker-process side
// ---------------------------------------------------------------------------

/// If this process was launched as a coordinator's worker child, run the
/// worker loop over stdin/stdout and **exit** — otherwise return
/// immediately. Binaries that can host process-transport sweeps (the
/// bench binaries, the chaos tests) call this first thing in `main`; the
/// supervisor launches workers by re-executing the current binary with
/// the marker environment set, so the self-exec lands here.
pub fn maybe_run_process_worker() {
    // mlf-lint: allow(ambient-entropy, reason = "the env marker only selects worker-child mode at process startup (a sanctioned process boundary, like the coordinator's deadline clock); computed bytes stay a pure function of the Init frame")
    let armed = matches!(std::env::var_os(WORKER_ENV), Some(v) if v == "1");
    if !armed {
        return;
    }
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let code = run_stdio_worker(&mut stdin.lock(), &mut stdout.lock());
    std::process::exit(code);
}

/// The worker-process loop: read an `Init`, rebuild the scenario, then
/// serve `Assign` frames until `Shutdown` or EOF. Returns the process
/// exit code (0 clean, 2 protocol failure, 3 injected crash).
///
/// Fault semantics mirror the thread workers: `CrashWorker` and
/// `KillProcess` exit without replying (the supervisor additionally
/// SIGKILLs on `KillProcess` — whichever lands first, the coordinator
/// observes a dead worker), `Stall` sleeps past the shard deadline,
/// `CorruptHash` lies about the content hash, `DuplicateShard` delivers
/// twice. `TornFrame` is injected by the *supervisor* (it damages wire
/// bytes); this side merely rejects the damaged frame and resyncs.
pub(crate) fn run_stdio_worker<R: Read, W: Write>(input: &mut R, output: &mut W) -> i32 {
    let init = match read_frame(input) {
        Ok(Some(Frame::Init(init))) => init,
        Ok(None) => return 0,
        Ok(Some(_)) => {
            let _ = write_frame(
                output,
                &Frame::Reject {
                    message: "expected an Init frame first".to_string(),
                },
            );
            return 2;
        }
        Err(e) => {
            let _ = write_frame(
                output,
                &Frame::Reject {
                    message: e.to_string(),
                },
            );
            return 2;
        }
    };
    let scenario = match init.spec.build_scenario() {
        Ok(s) => s,
        Err(reason) => {
            let _ = write_frame(output, &Frame::Reject { message: reason });
            return 2;
        }
    };
    let mut ws = SolverWorkspace::new();
    let mut cache: Option<SolveCache> = scenario.worker_cache_with_spill(init.spill.as_deref());
    // Start the delta baseline at zero so segment corruption discovered at
    // open time reaches the coordinator with the first report.
    let mut last_spill = SpillStats::default();
    loop {
        let a = match read_frame(input) {
            Ok(Some(Frame::Assign(a))) => a,
            Ok(Some(Frame::Shutdown)) | Ok(None) => return 0,
            Ok(Some(_)) => {
                let _ = write_frame(
                    output,
                    &Frame::Reject {
                        message: "unexpected frame (worker takes Assign/Shutdown)".to_string(),
                    },
                );
                continue;
            }
            Err(e) if e.resyncable() => {
                let _ = write_frame(
                    output,
                    &Frame::Reject {
                        message: e.to_string(),
                    },
                );
                continue;
            }
            Err(_) => return 2,
        };
        let fault = match a.task {
            TaskId::Shard(_) => init.plan.fires(init.worker, a.shard, a.attempt),
            TaskId::Spot(_) => None,
        };
        if matches!(fault, Some(FaultKind::CrashWorker | FaultKind::KillProcess)) {
            // Exit without replying; the supervisor's SIGKILL (for
            // KillProcess) races this clean exit, and either way the
            // coordinator sees a dead worker and requeues.
            return 3;
        }
        if matches!(fault, Some(FaultKind::Stall)) {
            std::thread::sleep(init.stall);
        }
        let points: Vec<SweepPoint> = a
            .jobs
            .iter()
            .map(|&(model, seed)| scenario.sweep_point_with(seed, model, &mut ws, cache.as_mut()))
            .collect();
        let mut hash = shard_content_hash(a.shard, a.start, &points);
        if matches!(fault, Some(FaultKind::CorruptHash)) {
            hash ^= 0x5eed_bad0_dead_beef;
        }
        let now_spill = cache
            .as_ref()
            .and_then(|c| c.spill_stats())
            .unwrap_or_default();
        let spill = now_spill.since(&last_spill);
        last_spill = now_spill;
        let report = Frame::Report(WorkerReport {
            worker: init.worker,
            task: a.task,
            attempt: a.attempt,
            points,
            hash,
            spill,
        });
        if matches!(fault, Some(FaultKind::DuplicateShard)) && write_frame(output, &report).is_err()
        {
            return 2;
        }
        if write_frame(output, &report).is_err() {
            return 2;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScenarioMetrics;

    fn spec() -> ScenarioSpec {
        ScenarioSpec {
            label: "wire".to_string(),
            family: TopologyFamily::FlatTree,
            nodes: 12,
            sessions: 3,
            max_receivers: 3,
            link_model: Some(LinkRateModel::Scaled(2.0)),
            allocator: AllocatorCode::MultiRate,
            check_properties: true,
            cache_points: 64,
            cache_networks: 16,
        }
    }

    fn point(seed: u64) -> SweepPoint {
        SweepPoint {
            seed,
            model: Some(LinkRateModel::RandomJoin { sigma: 6.0 }),
            metrics: ScenarioMetrics {
                jain_index: 0.9,
                min_rate: -0.0,
                total_rate: f64::NAN,
                satisfaction: 0.5,
                iterations: 11,
            },
            properties_holding: Some(4),
        }
    }

    #[test]
    fn every_frame_type_round_trips() {
        let frames = vec![
            Frame::Init(WorkerInit {
                worker: 3,
                stall: Duration::from_millis(250),
                spill: Some(PathBuf::from("/tmp/worker-3.spill")),
                plan: FaultPlan::from_events(vec![
                    FaultEvent {
                        kind: FaultKind::TornFrame,
                        worker: 1,
                        shard: 4,
                    },
                    FaultEvent {
                        kind: FaultKind::KillProcess,
                        worker: 0,
                        shard: 2,
                    },
                ]),
                spec: spec(),
            }),
            Frame::Init(WorkerInit {
                worker: 0,
                stall: Duration::ZERO,
                spill: None,
                plan: FaultPlan::none(),
                spec: ScenarioSpec {
                    family: TopologyFamily::TransitStub { transit: 3 },
                    link_model: None,
                    allocator: AllocatorCode::Unicast,
                    check_properties: false,
                    ..spec()
                },
            }),
            Frame::Assign(Assignment {
                task: TaskId::Spot(7),
                attempt: 2,
                shard: 7,
                start: 56,
                jobs: vec![(None, 1), (Some(LinkRateModel::Sum), 9)],
            }),
            Frame::Report(WorkerReport {
                worker: 1,
                task: TaskId::Shard(7),
                attempt: 0,
                points: vec![point(0), point(1)],
                hash: 0xdead_beef,
                spill: SpillStats {
                    hits: 1,
                    misses: 2,
                    spilled: 3,
                    corrupt_segments: 0,
                },
            }),
            Frame::Reject {
                message: "bad frame".to_string(),
            },
            Frame::Shutdown,
        ];
        let mut wire = Vec::new();
        for f in &frames {
            wire.extend_from_slice(&frame_bytes(f));
        }
        let mut cursor = &wire[..];
        for f in &frames {
            let got = read_frame(&mut cursor).unwrap().expect("frame present");
            // The codec is canonical, so byte equality of re-encodings is
            // full structural equality (and survives NaN metrics).
            assert_eq!(frame_bytes(&got), frame_bytes(f));
        }
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn damaged_frames_are_classified() {
        let good = frame_bytes(&Frame::Reject {
            message: "x".to_string(),
        });

        let mut flipped = good.clone();
        let idx = HEADER_BYTES + 1;
        flipped[idx] ^= 0x20;
        let err = read_frame(&mut &flipped[..]).unwrap_err();
        assert!(
            matches!(err, TransportError::ChecksumMismatch { .. }),
            "{err}"
        );
        assert!(err.resyncable());

        let mut magic = good.clone();
        magic[0] = b'X';
        let err = read_frame(&mut &magic[..]).unwrap_err();
        assert!(matches!(err, TransportError::BadMagic { .. }), "{err}");
        assert!(!err.resyncable());

        let mut skew = good.clone();
        skew[4] = 0xff;
        let err = read_frame(&mut &skew[..]).unwrap_err();
        assert!(
            matches!(
                err,
                TransportError::VersionSkew {
                    wire: 0x00ff,
                    supported: PROTOCOL_VERSION
                }
            ),
            "{err}"
        );

        let truncated = &good[..good.len() - 3];
        let err = read_frame(&mut &truncated[..]).unwrap_err();
        assert!(matches!(err, TransportError::Truncated { .. }), "{err}");
        let err = read_frame(&mut &good[..5]).unwrap_err();
        assert!(
            matches!(
                err,
                TransportError::Truncated {
                    expected: HEADER_BYTES,
                    got: 5
                }
            ),
            "{err}"
        );

        // An unknown type with a valid checksum: consumed whole, resyncable.
        let mut unknown = Vec::new();
        unknown.extend_from_slice(&MAGIC);
        unknown.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
        unknown.push(99);
        unknown.extend_from_slice(&0u32.to_le_bytes());
        let mut h = Fnv1a::new();
        h.write(&unknown);
        unknown.extend_from_slice(&h.finish().to_le_bytes());
        unknown.extend_from_slice(&good);
        let mut cursor = &unknown[..];
        let err = read_frame(&mut cursor).unwrap_err();
        assert!(
            matches!(err, TransportError::UnknownFrameType { tag: 99 }),
            "{err}"
        );
        assert!(err.resyncable());
        assert!(
            matches!(read_frame(&mut cursor).unwrap(), Some(Frame::Reject { .. })),
            "reader resynced on the next frame"
        );
    }

    #[test]
    fn process_spec_round_trips_every_registered_allocator() {
        for code in AllocatorCode::ALL {
            let spec = ScenarioSpec {
                allocator: code,
                // Weighted/Unicast regimes reject non-efficient link rates.
                link_model: None,
                ..spec()
            };
            let scenario = spec.build_scenario().expect("spec builds");
            let back = scenario.process_spec().expect("spec ships");
            assert_eq!(back.allocator, code, "allocator registry round trip");
            assert_eq!(back.nodes, spec.nodes);
            assert_eq!(back.check_properties, spec.check_properties);
        }
    }

    #[test]
    fn fixed_networks_are_rejected() {
        let net = mlf_net::topology::random_network(0, 10, 3, 3).unwrap();
        let scenario = Scenario::builder().network(net).build().unwrap();
        assert!(scenario.process_spec().is_err());
    }

    #[test]
    fn stdio_worker_matches_sweep_bitwise() {
        let spec = spec();
        let mut scenario = spec.build_scenario().unwrap();
        let seeds: Vec<u64> = (0..6).collect();
        let expected = scenario.sweep(seeds.iter().copied());
        let jobs: Vec<Job> = seeds.iter().map(|&s| (None, s)).collect();

        let mut input = Vec::new();
        input.extend(frame_bytes(&Frame::Init(WorkerInit {
            worker: 0,
            stall: Duration::ZERO,
            spill: None,
            plan: FaultPlan::none(),
            spec: spec.clone(),
        })));
        input.extend(frame_bytes(&Frame::Assign(Assignment {
            task: TaskId::Shard(0),
            attempt: 0,
            shard: 0,
            start: 0,
            jobs: jobs.clone(),
        })));
        // A torn frame mid-stream: the worker must reject and resync.
        let mut torn = frame_bytes(&Frame::Assign(Assignment {
            task: TaskId::Shard(1),
            attempt: 0,
            shard: 1,
            start: 6,
            jobs: jobs.clone(),
        }));
        torn[HEADER_BYTES] ^= 0x40;
        input.extend(torn);
        input.extend(frame_bytes(&Frame::Shutdown));

        let mut output = Vec::new();
        let code = run_stdio_worker(&mut &input[..], &mut output);
        assert_eq!(code, 0, "clean shutdown");

        let mut out = &output[..];
        let Some(Frame::Report(rep)) = read_frame(&mut out).unwrap() else {
            panic!("expected a report first");
        };
        assert_eq!(rep.worker, 0);
        assert_eq!(rep.task, TaskId::Shard(0));
        assert_eq!(rep.hash, shard_content_hash(0, 0, &rep.points));
        let enc_got: Vec<_> = rep.points.iter().map(encode_point).collect();
        let enc_want: Vec<_> = expected.points.iter().map(encode_point).collect();
        assert_eq!(enc_got, enc_want, "process-side points bitwise equal");
        let Some(Frame::Reject { .. }) = read_frame(&mut out).unwrap() else {
            panic!("expected a reject for the torn frame");
        };
        assert!(read_frame(&mut out).unwrap().is_none());
    }
}
