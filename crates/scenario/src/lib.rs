//! # mlf-scenario — declarative experiment composition
//!
//! Every figure of the paper — and every experiment this workspace has
//! grown beyond it — composes the same five ingredients: a topology (from
//! `mlf-net`), a session link-rate model (`LinkRateConfig`), an allocation
//! regime (an `mlf-core` [`Allocator`]), optionally a layer ladder (from
//! `mlf-layering`), and metric/property reporting. Before this crate, each
//! figure binary, example, and test hand-wired those pieces; a [`Scenario`]
//! declares them once and offers [`Scenario::run`] for a single solve and
//! [`Scenario::sweep`]/[`Scenario::sweep_grid`] for parameter grids.
//!
//! A scenario owns one [`SolverWorkspace`], so a sweep's repeated solves
//! reuse scratch buffers instead of re-allocating per call — the hot-path
//! win the Figure 5/8 sweeps need. It also owns a bounded [`SolveCache`]
//! ([`cache`]): seeded topologies are built once per `(family, shape,
//! seed)` and whole sweep points are memoized per `(topology, effective
//! link-rate model)`, so model grids share topology builds and repeated
//! sweeps replay from cache — bitwise identically, with
//! [`SweepReport::cache`] reporting hits/misses/evictions. For multi-core
//! machines, [`Scenario::sweep_par`] and [`Scenario::sweep_grid_par`]
//! shard the seed/grid space across `std::thread::scope` workers (one
//! workspace and one worker-local cache per worker) and merge the points
//! back in deterministic seed order, so the parallel output is **bitwise
//! identical** to the serial one at any thread count.
//!
//! ## The shared executor
//!
//! The shard/merge machinery itself lives in [`executor::run_jobs_par`],
//! generic over the job and output types: balanced contiguous partition,
//! one worker-local state per thread, in-order merge. Allocator sweeps
//! instantiate it with `(model, seed)` jobs and per-worker
//! [`SolverWorkspace`]s; [`protocol`] instantiates it with
//! `(protocol, loss, seed)` jobs and stateless workers, which is how the
//! Figure 8 protocol comparisons ([`ProtocolScenario`] over a
//! [`ProtocolSweepGrid`]) get the same parallel, bitwise-deterministic
//! treatment as allocator sweeps. See the [`executor`] module docs for the
//! exact determinism contract.
//!
//! ## Topology families
//!
//! Random sweeps draw their topologies from a [`TopologyFamily`]:
//! [`ScenarioBuilder::random_networks`] uses the flat random-attachment
//! tree, and [`ScenarioBuilder::random_networks_with`] selects any family —
//! balanced k-ary trees, GT-ITM-style transit–stub hierarchies, or dumbbell
//! meshes — so sweeps cover structurally diverse networks instead of one
//! tree shape. Degenerate requests (one node, zero sessions) are rejected
//! at [`ScenarioBuilder::build`] time via [`ScenarioError::Topology`]
//! rather than silently rewritten.
//!
//! ## Example
//!
//! ```
//! use mlf_core::allocator::MultiRate;
//! use mlf_net::{Graph, Network, Session};
//! use mlf_scenario::Scenario;
//!
//! // One layered video session against a competing unicast.
//! let mut g = Graph::new();
//! let (src, hub) = (g.add_node(), g.add_node());
//! let (a, b) = (g.add_node(), g.add_node());
//! g.add_link(src, hub, 10.0).unwrap();
//! g.add_link(hub, a, 2.0).unwrap();
//! g.add_link(hub, b, 6.0).unwrap();
//! let net = Network::new(g, vec![
//!     Session::multi_rate(src, vec![a, b]),
//!     Session::unicast(src, b),
//! ]).unwrap();
//!
//! let mut scenario = Scenario::builder()
//!     .label("quickstart")
//!     .network(net)
//!     .allocator(MultiRate::new())
//!     .build()
//!     .unwrap();
//! let report = scenario.run();
//! assert_eq!(report.solution.allocation.rates(), &[vec![2.0, 3.0], vec![3.0]]);
//! assert!(report.fairness.unwrap().all_hold()); // Theorem 1
//! ```
//!
//! Sweeps over random topologies are deterministic in their seeds, and the
//! parallel executor reproduces the serial points exactly:
//!
//! ```
//! use mlf_net::TopologyFamily;
//! use mlf_scenario::Scenario;
//!
//! let mut s = Scenario::builder()
//!     .random_networks_with(TopologyFamily::TransitStub { transit: 3 }, 12, 4, 4)
//!     .build()
//!     .unwrap();
//! let once = s.sweep(0..8);
//! let again = s.sweep(0..8);
//! assert_eq!(once.points, again.points);
//! let parallel = s.sweep_par(0..8, 4);
//! assert_eq!(once.points, parallel.points);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod checkpoint;
pub mod coordinator;
pub mod executor;
mod hash;
pub mod protocol;
mod spill;
mod supervisor;
pub mod transport;

pub use cache::{CacheStats, SharedSolveCache, SolveCache};
pub use checkpoint::CheckpointError;
pub use coordinator::{
    CoordinatorConfig, CoordinatorError, CoordinatorReport, CoordinatorStats, FaultEvent,
    FaultKind, FaultPlan, ProcessConfig, TransportKind,
};
pub use protocol::ProtocolScenarioError;
pub use protocol::{
    ProtocolScenario, ProtocolScenarioBuilder, ProtocolSweepGrid, ProtocolSweepPoint,
    ProtocolSweepReport,
};
pub use transport::TransportError;

use cache::{SolveKey, TopologyKey};
use hash::Fnv1a;
use mlf_core::allocator::{Allocator, Hybrid, SolverWorkspace};
use mlf_core::{
    metrics, properties, FairnessReport, LinkRateConfig, LinkRateModel, MaxMinSolution,
};
use mlf_layering::LayerSchedule;
use mlf_net::topology::random_network_with;
use mlf_net::{Network, ReceiverId, TopologyError, TopologyFamily};

/// Where a scenario's networks come from.
#[derive(Debug, Clone)]
pub(crate) enum NetworkSource {
    /// One fixed network (e.g. a paper figure).
    Fixed(Network),
    /// A `mlf_net::topology` random family, one network per sweep seed.
    Random {
        /// The structural family the topologies are drawn from.
        family: TopologyFamily,
        /// Number of nodes in the random graph.
        nodes: usize,
        /// Number of multicast sessions.
        sessions: usize,
        /// Maximum receivers per session.
        max_receivers: usize,
    },
}

/// How the per-session link-rate models are chosen.
#[derive(Debug, Clone, Default)]
pub enum LinkRates {
    /// Every session efficient (`v = max`, the Section 2 assumption).
    #[default]
    Efficient,
    /// The same model for every session.
    Uniform(LinkRateModel),
    /// An explicit per-session configuration (fixed networks only; its
    /// length must match the network's session count).
    Explicit(LinkRateConfig),
}

impl LinkRates {
    fn resolve(&self, session_count: usize) -> LinkRateConfig {
        match self {
            LinkRates::Efficient => LinkRateConfig::efficient(session_count),
            LinkRates::Uniform(m) => LinkRateConfig::uniform(session_count, *m),
            LinkRates::Explicit(cfg) => cfg.clone(),
        }
    }
}

/// Why a [`ScenarioBuilder`] refused to build.
// mlf-lint: allow(unused-pub, reason = "documented public API; doc examples and links are invisible to the analyzer")
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioError {
    /// Neither [`ScenarioBuilder::network`] nor
    /// [`ScenarioBuilder::random_networks`] was called.
    MissingNetwork,
    /// An explicit [`LinkRateConfig`] does not cover the fixed network's
    /// sessions.
    ConfigShape {
        /// Sessions in the network.
        expected: usize,
        /// Models in the config.
        got: usize,
    },
    /// An explicit [`LinkRateConfig`] cannot parameterize a random-network
    /// sweep (session counts are not fixed); use `Efficient` or `Uniform`.
    ExplicitConfigOnRandom,
    /// Non-efficient link rates were configured for an allocator whose
    /// regime has no link-rate parameterization (`Weighted`, `Unicast`).
    AllocatorIgnoresLinkRates,
    /// A random-network source was configured with parameters its topology
    /// family rejects (too few nodes, zero sessions, zero receivers, …).
    /// Earlier versions silently clamped these into a different experiment.
    Topology(TopologyError),
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::MissingNetwork => {
                write!(
                    f,
                    "scenario needs a network source (network(..) or random_networks(..))"
                )
            }
            ScenarioError::ConfigShape { expected, got } => write!(
                f,
                "link-rate config covers {got} sessions but the network has {expected}"
            ),
            ScenarioError::ExplicitConfigOnRandom => write!(
                f,
                "explicit link-rate configs don't compose with random-network sweeps; \
                 use LinkRates::Efficient or LinkRates::Uniform"
            ),
            ScenarioError::AllocatorIgnoresLinkRates => write!(
                f,
                "this allocator has no link-rate parameterization; configure link \
                 rates with MultiRate, SingleRate, or Hybrid"
            ),
            ScenarioError::Topology(e) => write!(f, "bad random-network source: {e}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

/// Builder for [`Scenario`]. Obtain via [`Scenario::builder`].
// mlf-lint: allow(unused-pub, reason = "documented public API; doc examples and links are invisible to the analyzer")
pub struct ScenarioBuilder {
    label: String,
    source: Option<NetworkSource>,
    link_rates: LinkRates,
    allocator: Box<dyn Allocator>,
    layering: Option<LayerSchedule>,
    check_properties: bool,
    cache_points: usize,
    cache_networks: usize,
    shared_cache: Option<SharedSolveCache>,
}

impl Default for ScenarioBuilder {
    fn default() -> Self {
        ScenarioBuilder {
            label: "scenario".to_string(),
            source: None,
            link_rates: LinkRates::Efficient,
            allocator: Box::new(Hybrid::as_declared()),
            layering: None,
            check_properties: true,
            cache_points: cache::DEFAULT_POINT_CAPACITY,
            cache_networks: cache::DEFAULT_NETWORK_CAPACITY,
            shared_cache: None,
        }
    }
}

impl ScenarioBuilder {
    /// Name the scenario (shows up in reports).
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Solve this fixed network.
    pub fn network(mut self, net: Network) -> Self {
        self.source = Some(NetworkSource::Fixed(net));
        self
    }

    /// Sweep over flat random-tree topologies
    /// (`random_network(seed, nodes, sessions, max_receivers)`), one per
    /// seed. Shorthand for [`ScenarioBuilder::random_networks_with`] with
    /// [`TopologyFamily::FlatTree`].
    pub fn random_networks(self, nodes: usize, sessions: usize, max_receivers: usize) -> Self {
        self.random_networks_with(TopologyFamily::FlatTree, nodes, sessions, max_receivers)
    }

    /// Sweep over random topologies of an explicit [`TopologyFamily`]
    /// (balanced k-ary trees, transit–stub hierarchies, dumbbell meshes, …),
    /// one network per seed. Parameters the family cannot realize are
    /// rejected at [`ScenarioBuilder::build`] time.
    pub fn random_networks_with(
        mut self,
        family: TopologyFamily,
        nodes: usize,
        sessions: usize,
        max_receivers: usize,
    ) -> Self {
        self.source = Some(NetworkSource::Random {
            family,
            nodes,
            sessions,
            max_receivers,
        });
        self
    }

    /// Choose the link-rate models (default: every session efficient).
    pub fn link_rates(mut self, rates: LinkRates) -> Self {
        self.link_rates = rates;
        self
    }

    /// Choose the allocation regime (default:
    /// [`Hybrid::as_declared`] — each session's declared type).
    pub fn allocator(mut self, allocator: impl Allocator + 'static) -> Self {
        self.allocator = Box::new(allocator);
        self
    }

    /// Quantize fair rates onto a layer ladder and report the fit.
    pub fn layering(mut self, schedule: LayerSchedule) -> Self {
        self.layering = Some(schedule);
        self
    }

    /// Audit the four Section 2 fairness properties on every run
    /// (default: on).
    pub fn check_properties(mut self, check: bool) -> Self {
        self.check_properties = check;
        self
    }

    /// Bound the sweep solve/topology cache: `points` memoized
    /// [`SweepPoint`]s and `networks` built topologies (defaults:
    /// [`cache::DEFAULT_POINT_CAPACITY`] /
    /// [`cache::DEFAULT_NETWORK_CAPACITY`]). `cache_capacity(0, 0)`
    /// disables caching entirely; see [`cache`] for the key semantics and
    /// the determinism argument.
    pub fn cache_capacity(mut self, points: usize, networks: usize) -> Self {
        self.cache_points = points;
        self.cache_networks = networks;
        self
    }

    /// Pool this scenario's serial-sweep solve cache with other scenarios
    /// holding a clone of the same [`SharedSolveCache`] handle. Scenarios
    /// that differ only in *reporting* (label, layering ladder) perform
    /// identical solves and serve each other's points; scenarios whose
    /// solve-relevant configuration differs key disjoint entries via the
    /// scenario-identity component of the cache key, so sharing one handle
    /// across heterogeneous scenarios is always safe. An allocator that
    /// cannot state its [`cache_signature`](Allocator::cache_signature)
    /// falls back to the scenario-owned cache. Parallel sweeps keep
    /// worker-local caches and never consult the shared handle.
    pub fn shared_cache(mut self, shared: &SharedSolveCache) -> Self {
        self.shared_cache = Some(shared.clone());
        self
    }

    /// Validate and assemble the scenario.
    pub fn build(self) -> Result<Scenario, ScenarioError> {
        let source = self.source.ok_or(ScenarioError::MissingNetwork)?;
        if !matches!(self.link_rates, LinkRates::Efficient) && !self.allocator.supports_link_rates()
        {
            return Err(ScenarioError::AllocatorIgnoresLinkRates);
        }
        if let NetworkSource::Random {
            family,
            nodes,
            sessions,
            max_receivers,
        } = &source
        {
            // The same validation random_network_with performs, surfaced at
            // build time so sweeps never panic mid-run on a bad request.
            family
                .validate_request(*nodes, *sessions, *max_receivers)
                .map_err(ScenarioError::Topology)?;
        }
        if let LinkRates::Explicit(cfg) = &self.link_rates {
            match &source {
                NetworkSource::Fixed(net) => {
                    if cfg.len() != net.session_count() {
                        return Err(ScenarioError::ConfigShape {
                            expected: net.session_count(),
                            got: cfg.len(),
                        });
                    }
                }
                NetworkSource::Random { .. } => {
                    return Err(ScenarioError::ExplicitConfigOnRandom);
                }
            }
        }
        // The scenario's solve-relevant identity: everything outside the
        // per-point `SolveKey` that can still change a solve's bytes. `None`
        // when the allocator cannot cheaply state its signature — the
        // scenario-owned cache then keys with a sentinel (it only ever sees
        // this one configuration) and shared caches are bypassed.
        let scenario_sig = self.allocator.cache_signature().map(|sig| {
            let mut h = Fnv1a::new();
            h.write(sig.as_bytes());
            h.write_u64(u64::from(self.check_properties));
            h.finish()
        });
        Ok(Scenario {
            label: self.label,
            source,
            link_rates: self.link_rates,
            allocator: self.allocator,
            layering: self.layering,
            check_properties: self.check_properties,
            ws: SolverWorkspace::new(),
            cache: SolveCache::with_capacity(self.cache_points, self.cache_networks),
            cache_points: self.cache_points,
            cache_networks: self.cache_networks,
            shared_cache: self.shared_cache,
            scenario_sig,
        })
    }
}

/// A declarative experiment: topology × link-rate model × allocation regime
/// × (optional) layering × reporting, with solver scratch reused across
/// every run it performs.
///
/// Serial sweeps additionally reuse a per-scenario [`SolveCache`]: seeded
/// topologies are built once per `(family, shape, seed)` and whole sweep
/// points are memoized per `(topology, effective link-rate model)`, so a
/// grid revisiting the same cells (across its models, or across repeated
/// sweep calls) skips the rebuild and the solve. Cached output is bitwise
/// identical to uncached output — a point is a pure function of its key —
/// and the parallel executors give each worker a private cache, keeping
/// the serial/parallel bitwise contract intact. [`SweepReport::cache`]
/// reports each sweep's hits/misses/evictions.
pub struct Scenario {
    label: String,
    source: NetworkSource,
    link_rates: LinkRates,
    allocator: Box<dyn Allocator>,
    layering: Option<LayerSchedule>,
    check_properties: bool,
    ws: SolverWorkspace,
    cache: SolveCache,
    cache_points: usize,
    cache_networks: usize,
    shared_cache: Option<SharedSolveCache>,
    scenario_sig: Option<u64>,
}

impl Scenario {
    /// Start building a scenario.
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder::default()
    }

    /// The scenario's label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The fixed network, when the source is fixed.
    pub fn network(&self) -> Option<&Network> {
        match &self.source {
            NetworkSource::Fixed(net) => Some(net),
            NetworkSource::Random { .. } => None,
        }
    }

    /// How many solves this scenario's workspace has served.
    pub fn solves(&self) -> u64 {
        self.ws.solves()
    }

    /// Solve the scenario once (seed 0 for random sources).
    pub fn run(&mut self) -> ScenarioReport {
        self.run_seeded(0)
    }

    /// Solve the scenario for one seed (ignored by fixed sources).
    pub(crate) fn run_seeded(&mut self, seed: u64) -> ScenarioReport {
        self.run_inner(seed, None)
    }

    fn run_inner(&mut self, seed: u64, model_override: Option<LinkRateModel>) -> ScenarioReport {
        // Detach the owned workspace so the shared solve path can borrow
        // `self` immutably (the same path the parallel workers use).
        let mut ws = std::mem::take(&mut self.ws);
        let report = self.solve_with_ws(seed, model_override, &mut ws);
        self.ws = ws;
        report
    }

    /// Solve one point against an explicit workspace. This is the whole
    /// solve path: serial sweeps call it with the scenario's own workspace,
    /// parallel workers with their per-thread one — which is why the two
    /// executors agree bitwise (a solve's result never depends on workspace
    /// history).
    fn solve_with_ws(
        &self,
        seed: u64,
        model_override: Option<LinkRateModel>,
        ws: &mut SolverWorkspace,
    ) -> ScenarioReport {
        let owned;
        let net = match &self.source {
            NetworkSource::Fixed(net) => net,
            NetworkSource::Random { .. } => {
                owned = self.build_network(seed);
                &owned
            }
        };
        self.report_for(net, seed, model_override, ws)
    }

    /// Build the seeded topology of a random source (panics on fixed
    /// sources, which never call it).
    fn build_network(&self, seed: u64) -> Network {
        match &self.source {
            NetworkSource::Fixed(_) => unreachable!("fixed sources hold their network"),
            NetworkSource::Random {
                family,
                nodes,
                sessions,
                max_receivers,
            } => random_network_with(*family, seed, *nodes, *sessions, *max_receivers)
                // mlf-lint: allow(panic-unwrap, reason = "ScenarioBuilder::build already rejected invalid random-source parameters, so regeneration cannot fail")
                .expect("random-source parameters were validated at build time"),
        }
    }

    /// The full per-point report against an explicit, already-built
    /// network: the tail of the solve path shared by the cached and
    /// uncached executors.
    fn report_for(
        &self,
        net: &Network,
        seed: u64,
        model_override: Option<LinkRateModel>,
        ws: &mut SolverWorkspace,
    ) -> ScenarioReport {
        let cfg = match model_override {
            Some(m) => LinkRateConfig::uniform(net.session_count(), m),
            None => self.link_rates.resolve(net.session_count()),
        };
        // The allocator solves under the scenario's link-rate config — the
        // same one the property audit uses. Allocators without link-rate
        // parameterization (Weighted, Unicast) only compose with efficient
        // link rates, enforced at build()/sweep_grid() time.
        let solution =
            if matches!(self.link_rates, LinkRates::Efficient) && model_override.is_none() {
                self.allocator.solve(net, ws)
            } else {
                self.allocator
                    .solve_with(net, &cfg, ws)
                    // mlf-lint: allow(panic-unwrap, reason = "build()/sweep_grid() already rejected allocator/link-rate combinations that solve_with cannot handle")
                    .expect("allocator link-rate support was validated at build time")
            };
        let fairness = self
            .check_properties
            .then(|| properties::check_all(net, &cfg, &solution.allocation));
        let layering = self
            .layering
            .as_ref()
            .map(|s| LayeringSummary::new(s, net, &solution));
        let metrics = ScenarioMetrics::measure(net, &solution);
        ScenarioReport {
            label: self.label.clone(),
            seed,
            solution,
            fairness,
            metrics,
            layering,
        }
    }

    /// The cache identity of one sweep point, when the scenario's
    /// configuration is expressible as a uniform link-rate model (explicit
    /// per-session configs are not and bypass the cache).
    fn solve_key(&self, seed: u64, model_override: Option<LinkRateModel>) -> Option<SolveKey> {
        let model = match model_override {
            Some(m) => m,
            None => match &self.link_rates {
                LinkRates::Efficient => LinkRateModel::Efficient,
                LinkRates::Uniform(m) => *m,
                LinkRates::Explicit(_) => return None,
            },
        };
        let topology = match &self.source {
            // Fixed solves are seed-independent: every seed shares one
            // entry (the hit path restores the requesting seed label).
            NetworkSource::Fixed(_) => TopologyKey::fixed(),
            NetworkSource::Random {
                family,
                nodes,
                sessions,
                max_receivers,
            } => TopologyKey::random(*family, *nodes, *sessions, *max_receivers, seed),
        };
        // Owned caches only ever see this scenario's configuration, so a
        // signature-less allocator can safely key with a sentinel digest;
        // shared caches require a real signature (checked by the caller).
        Some(SolveKey::new(
            topology,
            model,
            self.scenario_sig.unwrap_or(0),
        ))
    }

    /// One sweep point through the cache (when one is supplied and the
    /// point is representable): memoized points return as clones, misses
    /// solve against the cached topology and populate the memo.
    fn sweep_point_with(
        &self,
        seed: u64,
        model: Option<LinkRateModel>,
        ws: &mut SolverWorkspace,
        cache: Option<&mut SolveCache>,
    ) -> SweepPoint {
        let uncached = |ws: &mut SolverWorkspace| {
            SweepPoint::from_report(self.solve_with_ws(seed, model, ws), model)
        };
        let Some(cache) = cache else {
            return uncached(ws);
        };
        let Some(key) = self.solve_key(seed, model) else {
            return uncached(ws);
        };
        if let Some(mut point) = cache.point(&key) {
            // The solve is key-determined but the `model` and `seed`
            // labels record what *this* job requested: a `None` job served
            // by a memoized `Some(Efficient)` solve, or a fixed-source
            // point memoized under a different seed, must still label its
            // point the way an uncached run would.
            point.model = model;
            point.seed = seed;
            return point;
        }
        let report = match &self.source {
            NetworkSource::Fixed(net) => self.report_for(net, seed, model, ws),
            NetworkSource::Random { .. } => {
                let net = cache.network(key.topology(), || self.build_network(seed));
                self.report_for(&net, seed, model, ws)
            }
        };
        let point = SweepPoint::from_report(report, model);
        cache.insert_point(key, point.clone());
        point
    }

    /// Whether caching is enabled at all for this scenario.
    fn caching_enabled(&self) -> bool {
        self.cache_points > 0 || self.cache_networks > 0
    }

    /// A fresh cache sized like the scenario's (the worker-local caches of
    /// the parallel executors), or `None` when caching is disabled.
    fn worker_cache(&self) -> Option<SolveCache> {
        self.caching_enabled()
            .then(|| SolveCache::with_capacity(self.cache_points, self.cache_networks))
    }

    /// A worker cache with a disk spill tier attached at `spill` (the
    /// coordinator's spill-enabled workers). The tier binds to the
    /// scenario's solve-identity digest, so a signature-less allocator —
    /// which could collide with a different configuration's segment —
    /// disables spilling entirely, mirroring the shared-cache policy. An
    /// unopenable segment likewise degrades to the plain in-memory cache;
    /// the spill tier is an optimization and must never fail a sweep.
    pub(crate) fn worker_cache_with_spill(
        &self,
        spill: Option<&std::path::Path>,
    ) -> Option<SolveCache> {
        let mut cache = self.worker_cache()?;
        if let (Some(path), Some(sig)) = (spill, self.scenario_sig) {
            if let Ok(tier) = crate::spill::SpillTier::open(path, sig) {
                cache.attach_spill(tier);
            }
        }
        Some(cache)
    }

    /// Run one solve per seed, reusing the workspace — and the scenario's
    /// persistent [`SolveCache`] — throughout. The result is a pure
    /// function of the seeds (and the scenario spec): two sweeps with
    /// equal seeds produce equal points (the second served from cache).
    pub fn sweep<I: IntoIterator<Item = u64>>(&mut self, seeds: I) -> SweepReport {
        let jobs: Vec<(Option<LinkRateModel>, u64)> =
            seeds.into_iter().map(|s| (None, s)).collect();
        self.sweep_jobs_serial(&jobs)
    }

    /// Run the full `seeds × models` grid (the Figure 4/5/6 pattern:
    /// the same topologies under different redundancy models). Each seeded
    /// topology is built once and shared across the grid's models through
    /// the scenario cache.
    pub fn sweep_grid(&mut self, grid: &SweepGrid) -> SweepReport {
        self.check_grid(grid);
        let jobs = Self::grid_jobs(grid);
        self.sweep_jobs_serial(&jobs)
    }

    /// The serial executor: one workspace, the scenario's own cache (or
    /// the pooled [`SharedSolveCache`] when one is configured and the
    /// allocator can state its signature), jobs in order.
    /// [`SweepReport::cache`] carries this sweep's share of the cache
    /// counters.
    fn sweep_jobs_serial(&mut self, jobs: &[(Option<LinkRateModel>, u64)]) -> SweepReport {
        // Detach the owned workspace/cache so the shared solve path can
        // borrow `self` immutably (the same path the parallel workers use).
        let mut ws = std::mem::take(&mut self.ws);
        let shared = match self.scenario_sig {
            // Sharing is only sound when the scenario identity digest is
            // real — a sentinel would let unrelated configurations collide.
            Some(_) => self.shared_cache.clone(),
            None => None,
        };
        let (points, stats) = if let Some(shared) = shared {
            // One lock acquisition for the whole sweep, not one per point.
            let mut guard = shared.lock();
            let before = guard.stats();
            let points = jobs
                .iter()
                .map(|&(model, seed)| {
                    self.sweep_point_with(seed, model, &mut ws, Some(&mut *guard))
                })
                .collect();
            (points, guard.stats().since(&before))
        } else {
            let mut cache = std::mem::take(&mut self.cache);
            let before = cache.stats();
            let enabled = self.caching_enabled();
            let points = jobs
                .iter()
                .map(|&(model, seed)| {
                    self.sweep_point_with(seed, model, &mut ws, enabled.then_some(&mut cache))
                })
                .collect();
            let stats = cache.stats().since(&before);
            self.cache = cache;
            (points, stats)
        };
        self.ws = ws;
        SweepReport {
            label: self.label.clone(),
            points,
            cache: stats,
        }
    }

    /// The canonical job order of a grid — models-major, then seeds. Both
    /// the serial and the parallel grid executor consume this one
    /// expansion, so their point order can never diverge.
    fn grid_jobs(grid: &SweepGrid) -> Vec<(Option<LinkRateModel>, u64)> {
        let mut jobs = Vec::with_capacity(grid.seeds.len() * grid.models.len().max(1));
        if grid.models.is_empty() {
            jobs.extend(grid.seeds.iter().map(|&s| (None, s)));
        } else {
            for &model in &grid.models {
                jobs.extend(grid.seeds.iter().map(|&s| (Some(model), s)));
            }
        }
        jobs
    }

    fn check_grid(&self, grid: &SweepGrid) {
        assert!(
            grid.models.is_empty() || self.allocator.supports_link_rates(),
            "{}",
            ScenarioError::AllocatorIgnoresLinkRates
        );
    }

    /// [`Scenario::sweep`], sharded across `threads` scoped worker threads.
    ///
    /// Each worker solves a contiguous shard of the seed list with its own
    /// [`SolverWorkspace`] and its own worker-local [`SolveCache`]; shards
    /// are merged back in seed order, so the result is **bitwise
    /// identical** to the serial [`Scenario::sweep`] for the same seeds,
    /// at any thread count (a solve's output never depends on workspace or
    /// cache history — a hit replays exactly the bits a fresh solve would
    /// produce). `threads == 0` means "use
    /// `std::thread::available_parallelism`". The scenario's own workspace
    /// and cache are untouched, so [`Scenario::solves`] does not count
    /// parallel solves; the report's [`SweepReport::cache`] merges the
    /// workers' counters.
    pub fn sweep_par<I: IntoIterator<Item = u64>>(&self, seeds: I, threads: usize) -> SweepReport {
        let jobs: Vec<(Option<LinkRateModel>, u64)> =
            seeds.into_iter().map(|s| (None, s)).collect();
        let (points, cache) = self.run_jobs_par(&jobs, threads);
        SweepReport {
            label: self.label.clone(),
            points,
            cache,
        }
    }

    /// [`Scenario::sweep_grid`], sharded across `threads` scoped worker
    /// threads. Point order (models-major, then seeds) and every point's
    /// bits match the serial executor exactly.
    pub fn sweep_grid_par(&self, grid: &SweepGrid, threads: usize) -> SweepReport {
        self.check_grid(grid);
        let (points, cache) = self.run_jobs_par(&Self::grid_jobs(grid), threads);
        SweepReport {
            label: self.label.clone(),
            points,
            cache,
        }
    }

    /// Run a job list through the shared deterministic executor
    /// ([`executor::run_jobs_par_with_state`]): balanced contiguous
    /// shards, one `(SolverWorkspace, SolveCache)` per worker, outputs
    /// merged back in job order, worker cache counters summed in shard
    /// order.
    fn run_jobs_par(
        &self,
        jobs: &[(Option<LinkRateModel>, u64)],
        threads: usize,
    ) -> (Vec<SweepPoint>, CacheStats) {
        let (points, states) = executor::run_jobs_par_with_state(
            jobs,
            threads,
            || (SolverWorkspace::new(), self.worker_cache()),
            |(ws, cache), &(model, seed)| self.sweep_point_with(seed, model, ws, cache.as_mut()),
        );
        let mut stats = CacheStats::default();
        for (_, cache) in &states {
            if let Some(cache) = cache {
                stats.merge(&cache.stats());
            }
        }
        (points, stats)
    }

    /// The lifetime counters of the scenario's own (serial-sweep) cache.
    // mlf-lint: allow(unused-pub, reason = "intentional API surface kept public alongside its siblings")
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Drop every cached topology and sweep point (counters are kept).
    // mlf-lint: allow(unused-pub, reason = "intentional API surface kept public alongside its siblings")
    pub fn clear_cache(&mut self) {
        self.cache.clear();
    }
}

/// A parameter grid for [`Scenario::sweep_grid`]: topology seeds crossed
/// with uniform link-rate models (empty `models` = use the scenario's own).
#[derive(Debug, Clone, Default)]
pub struct SweepGrid {
    /// Topology seeds (one network per seed for random sources).
    pub seeds: Vec<u64>,
    /// Uniform link-rate models to apply, each across the whole grid.
    pub models: Vec<LinkRateModel>,
}

impl SweepGrid {
    /// A seeds-only grid.
    pub fn seeds(seeds: impl IntoIterator<Item = u64>) -> Self {
        SweepGrid {
            seeds: seeds.into_iter().collect(),
            models: Vec::new(),
        }
    }

    /// Cross the grid with uniform link-rate models.
    pub fn with_models(mut self, models: impl IntoIterator<Item = LinkRateModel>) -> Self {
        self.models = models.into_iter().collect();
        self
    }
}

/// Scalar metrics of one solve.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioMetrics {
    /// Jain's fairness index of the receiver rates.
    pub jain_index: f64,
    /// The smallest receiver rate.
    pub min_rate: f64,
    /// Sum of receiver rates.
    pub total_rate: f64,
    /// Mean satisfaction (rate / isolated rate) across receivers.
    pub satisfaction: f64,
    /// Water-filling iterations the solve performed.
    pub iterations: usize,
}

impl ScenarioMetrics {
    fn measure(net: &Network, solution: &MaxMinSolution) -> Self {
        ScenarioMetrics {
            jain_index: metrics::jain_index(&solution.allocation),
            min_rate: solution.allocation.min_rate(),
            total_rate: solution.allocation.total_rate(),
            satisfaction: metrics::satisfaction(net, &solution.allocation),
            iterations: solution.iterations,
        }
    }
}

/// How one receiver's fair rate fits the scenario's layer ladder.
// mlf-lint: allow(unused-pub, reason = "reachable through public fn signatures and returned values; the ident-based usage scan cannot see type flow")
#[derive(Debug, Clone, PartialEq)]
pub struct LayerFit {
    /// The receiver.
    pub receiver: ReceiverId,
    /// Its max-min fair rate.
    pub fair_rate: f64,
    /// The deepest layer prefix whose cumulative rate fits under the fair
    /// rate.
    pub level: usize,
    /// That prefix's cumulative rate.
    pub fixed_rate: f64,
    /// The fraction of the fair rate the fixed prefix leaves on the table
    /// (recoverable by quantum join/leave scheduling).
    pub deficit: f64,
}

/// The layering report of one run: per-receiver ladder fits.
// mlf-lint: allow(unused-pub, reason = "reachable through public fn signatures and returned values; the ident-based usage scan cannot see type flow")
#[derive(Debug, Clone, PartialEq)]
pub struct LayeringSummary {
    /// Per-receiver fits, session-major.
    pub fits: Vec<LayerFit>,
}

impl LayeringSummary {
    fn new(schedule: &LayerSchedule, net: &Network, solution: &MaxMinSolution) -> Self {
        let fits = net
            .receivers()
            .map(|r| {
                let fair = solution.allocation.rate(r);
                let level = schedule.level_for_rate(fair);
                let fixed = schedule.cumulative_rate(level);
                LayerFit {
                    receiver: r,
                    fair_rate: fair,
                    level,
                    fixed_rate: fixed,
                    deficit: (fair - fixed) / fair.max(1e-12),
                }
            })
            .collect();
        LayeringSummary { fits }
    }

    /// Mean deficit across receivers (0 when every fair rate sits exactly
    /// on a ladder step).
    // mlf-lint: allow(unused-pub, reason = "intentional API surface kept public alongside its siblings")
    pub fn mean_deficit(&self) -> f64 {
        if self.fits.is_empty() {
            return 0.0;
        }
        self.fits.iter().map(|f| f.deficit).sum::<f64>() / self.fits.len() as f64
    }
}

/// Everything one [`Scenario::run`] produced.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// The scenario's label.
    pub label: String,
    /// The topology seed this run used (0 for fixed networks' `run()`).
    pub seed: u64,
    /// The full solver output (allocation + freeze diagnostics).
    pub solution: MaxMinSolution,
    /// The Section 2 property audit, unless disabled.
    pub fairness: Option<FairnessReport>,
    /// Scalar metrics.
    pub metrics: ScenarioMetrics,
    /// Ladder fits, when a layering schedule was configured.
    pub layering: Option<LayeringSummary>,
}

/// One point of a sweep, compressed to comparable scalars.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// The topology seed.
    pub seed: u64,
    /// The uniform link-rate model applied, for grid sweeps.
    pub model: Option<LinkRateModel>,
    /// Scalar metrics of the solve.
    pub metrics: ScenarioMetrics,
    /// How many of the four fairness properties held (when audited).
    pub properties_holding: Option<usize>,
}

impl SweepPoint {
    fn from_report(report: ScenarioReport, model: Option<LinkRateModel>) -> Self {
        SweepPoint {
            seed: report.seed,
            model,
            metrics: report.metrics,
            properties_holding: report.fairness.as_ref().map(|f| f.count_holding()),
        }
    }
}

/// The outcome of a sweep: one [`SweepPoint`] per (seed, model) pair.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// The scenario's label.
    pub label: String,
    /// The points, in sweep order.
    pub points: Vec<SweepPoint>,
    /// This sweep's solve-cache counters (serial: the scenario cache's
    /// delta; parallel: the workers' merged totals).
    pub cache: CacheStats,
}

/// Equality compares the **deterministic output** — label and points —
/// and deliberately ignores [`SweepReport::cache`]: cache telemetry
/// depends on execution history (a warm scenario hits where a cold one
/// misses, workers shard differently at different thread counts) while
/// the points are bitwise reproducible regardless. This is what lets the
/// serial/parallel differential suites keep asserting `serial == parallel`.
impl PartialEq for SweepReport {
    fn eq(&self, other: &Self) -> bool {
        self.label == other.label && self.points == other.points
    }
}

impl SweepReport {
    /// Mean of a per-point metric.
    pub fn mean_of(&self, f: impl Fn(&SweepPoint) -> f64) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(f).sum::<f64>() / self.points.len() as f64
    }

    /// Mean Jain index across points.
    pub fn mean_jain(&self) -> f64 {
        self.mean_of(|p| p.metrics.jain_index)
    }

    /// Mean minimum rate across points.
    pub fn mean_min_rate(&self) -> f64 {
        self.mean_of(|p| p.metrics.min_rate)
    }

    /// Fraction of points where all four properties held.
    pub fn all_properties_rate(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points
            .iter()
            .filter(|p| p.properties_holding == Some(4))
            .count() as f64
            / self.points.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlf_core::allocator::{MultiRate, SingleRate, Weighted};
    use mlf_net::{Graph, Session};

    fn two_branch_network() -> Network {
        let mut g = Graph::new();
        let (src, hub) = (g.add_node(), g.add_node());
        let (a, b) = (g.add_node(), g.add_node());
        g.add_link(src, hub, 10.0).unwrap();
        g.add_link(hub, a, 2.0).unwrap();
        g.add_link(hub, b, 6.0).unwrap();
        Network::new(
            g,
            vec![
                Session::multi_rate(src, vec![a, b]),
                Session::unicast(src, b),
            ],
        )
        .unwrap()
    }

    #[test]
    fn builder_validates_inputs() {
        assert_eq!(
            Scenario::builder().build().err(),
            Some(ScenarioError::MissingNetwork)
        );
        let err = Scenario::builder()
            .network(two_branch_network())
            .link_rates(LinkRates::Explicit(LinkRateConfig::efficient(5)))
            .build()
            .err();
        assert_eq!(
            err,
            Some(ScenarioError::ConfigShape {
                expected: 2,
                got: 5
            })
        );
        let err = Scenario::builder()
            .random_networks(10, 3, 3)
            .link_rates(LinkRates::Explicit(LinkRateConfig::efficient(3)))
            .build()
            .err();
        assert_eq!(err, Some(ScenarioError::ExplicitConfigOnRandom));
    }

    #[test]
    fn fixed_run_reports_paper_numbers() {
        let mut s = Scenario::builder()
            .label("fixture")
            .network(two_branch_network())
            .allocator(MultiRate::new())
            .build()
            .unwrap();
        let report = s.run();
        assert_eq!(
            report.solution.allocation.rates(),
            &[vec![2.0, 3.0], vec![3.0]]
        );
        assert!(report.fairness.unwrap().all_hold());
        assert!((report.metrics.total_rate - 8.0).abs() < 1e-9);
        assert_eq!(s.network().unwrap().session_count(), 2);
        assert_eq!(s.solves(), 1);
    }

    #[test]
    fn regime_comparison_through_scenarios() {
        let net = two_branch_network();
        let multi = Scenario::builder()
            .network(net.clone())
            .allocator(MultiRate::new())
            .build()
            .unwrap()
            .run();
        let single = Scenario::builder()
            .network(net)
            .allocator(SingleRate::new())
            .build()
            .unwrap()
            .run();
        // Multi-rate is strictly fairer by Jain's index on this network
        // (2,3,3 vs 2,2,4) and no receiver is worse off at the bottom.
        assert!(multi.metrics.jain_index > single.metrics.jain_index);
        assert!(multi.metrics.min_rate >= single.metrics.min_rate);
    }

    #[test]
    fn sweeps_are_deterministic_and_reuse_the_workspace() {
        let mut s = Scenario::builder()
            .random_networks(12, 4, 4)
            .allocator(MultiRate::new())
            .build()
            .unwrap();
        let a = s.sweep(0..10);
        let b = s.sweep(0..10);
        assert_eq!(a, b);
        // The first sweep solved everything; the second was served
        // entirely from the scenario cache (same points, no new solves).
        assert_eq!(s.solves(), 10);
        assert_eq!(
            (a.cache.hits, a.cache.misses, b.cache.hits, b.cache.misses),
            (0, 10, 10, 0)
        );
        assert_eq!(a.points.len(), 10);
        // Theorem 1 holds at every point of an all-multi-rate sweep.
        assert_eq!(a.all_properties_rate(), 1.0);

        // With the cache disabled, every sweep re-solves.
        let mut uncached = Scenario::builder()
            .random_networks(12, 4, 4)
            .allocator(MultiRate::new())
            .cache_capacity(0, 0)
            .build()
            .unwrap();
        let c = uncached.sweep(0..10);
        let d = uncached.sweep(0..10);
        assert_eq!(a.points, c.points, "cached and uncached points agree");
        assert_eq!(c.points, d.points);
        assert_eq!(uncached.solves(), 20);
        assert_eq!(c.cache, CacheStats::default());
    }

    #[test]
    fn warm_cache_replays_grid_sweeps_bitwise() {
        let mut s = Scenario::builder()
            .random_networks(14, 4, 4)
            .allocator(MultiRate::new())
            .build()
            .unwrap();
        let grid = SweepGrid::seeds(0..6).with_models([
            LinkRateModel::Efficient,
            LinkRateModel::Scaled(2.0),
            LinkRateModel::Sum,
        ]);
        let cold = s.sweep_grid(&grid);
        assert_eq!((cold.cache.hits, cold.cache.misses), (0, 18));
        let solves_after_cold = s.solves();
        let warm = s.sweep_grid(&grid);
        assert_eq!(cold, warm, "warm replay is bitwise identical");
        assert_eq!((warm.cache.hits, warm.cache.misses), (18, 0));
        assert_eq!(s.solves(), solves_after_cold, "warm sweep solved nothing");
        // And a fresh uncached scenario agrees point for point.
        let fresh = Scenario::builder()
            .random_networks(14, 4, 4)
            .allocator(MultiRate::new())
            .cache_capacity(0, 0)
            .build()
            .unwrap()
            .sweep_grid(&grid);
        assert_eq!(cold.points, fresh.points);
    }

    #[test]
    fn permuted_cache_population_order_preserves_stats_and_output() {
        // Warm two identical scenarios through grids that visit the same
        // cells in different orders, then sweep both with the canonical
        // grid. The caches were *populated* in different orders, so any
        // iteration-order dependence inside the cache (or hash-seed
        // dependence across instances) would surface as diverging stats or
        // points here.
        let models = [
            LinkRateModel::Efficient,
            LinkRateModel::Scaled(2.0),
            LinkRateModel::Sum,
        ];
        let canonical = SweepGrid::seeds(0..6).with_models(models);
        let permuted = SweepGrid::seeds((0..6).rev()).with_models({
            let mut m = models;
            m.reverse();
            m
        });
        let build = || {
            Scenario::builder()
                .random_networks(14, 4, 4)
                .allocator(MultiRate::new())
                .build()
                .unwrap()
        };
        let mut a = build();
        let mut b = build();
        a.sweep_grid(&canonical);
        b.sweep_grid(&permuted);
        let out_a = a.sweep_grid(&canonical);
        let out_b = b.sweep_grid(&canonical);
        assert_eq!(out_a, out_b, "sweep output depends on population order");
        assert_eq!(
            (out_a.cache.hits, out_a.cache.misses),
            (18, 0),
            "canonical replay after canonical warmup must be all hits"
        );
        assert_eq!(
            out_a.cache, out_b.cache,
            "cache stats depend on population order"
        );
    }

    #[test]
    fn grid_cells_share_solves_when_models_normalize_equal() {
        // The scenario's default (Efficient) and an explicit Efficient grid
        // model are the *same* solve: the second block of cells is served
        // from the first block's entries.
        let mut s = Scenario::builder()
            .random_networks(12, 3, 3)
            .allocator(MultiRate::new())
            .build()
            .unwrap();
        let grid = SweepGrid::seeds(0..5).with_models([LinkRateModel::Efficient]);
        let with_model = s.sweep_grid(&grid);
        assert_eq!((with_model.cache.hits, with_model.cache.misses), (0, 5));
        let plain = s.sweep(0..5);
        assert_eq!((plain.cache.hits, plain.cache.misses), (5, 0));
        // Labels still reflect what each sweep requested.
        assert!(with_model
            .points
            .iter()
            .all(|p| p.model == Some(LinkRateModel::Efficient)));
        assert!(plain.points.iter().all(|p| p.model.is_none()));
        // Metrics are identical cell for cell.
        for (a, b) in with_model.points.iter().zip(&plain.points) {
            assert_eq!(a.metrics, b.metrics);
        }
    }

    #[test]
    fn fixed_sources_share_one_solve_across_seeds() {
        // A fixed network's solve is seed-independent; sweeping many seeds
        // must solve once and relabel cached points per seed.
        let mut s = Scenario::builder()
            .network(two_branch_network())
            .allocator(MultiRate::new())
            .build()
            .unwrap();
        let report = s.sweep(0..8);
        assert_eq!((report.cache.hits, report.cache.misses), (7, 1));
        assert_eq!(s.solves(), 1);
        for (seed, p) in report.points.iter().enumerate() {
            assert_eq!(p.seed, seed as u64, "seed label restored on hit");
            assert_eq!(p.metrics, report.points[0].metrics);
        }
        // And the points match an uncached scenario's exactly.
        let uncached = Scenario::builder()
            .network(two_branch_network())
            .allocator(MultiRate::new())
            .cache_capacity(0, 0)
            .build()
            .unwrap()
            .sweep(0..8);
        assert_eq!(report.points, uncached.points);
    }

    #[test]
    fn explicit_configs_bypass_the_cache() {
        let net = two_branch_network();
        let mut s = Scenario::builder()
            .network(net)
            .allocator(MultiRate::new())
            .link_rates(LinkRates::Explicit(
                LinkRateConfig::efficient(2).with_session(0, LinkRateModel::Scaled(2.0)),
            ))
            .build()
            .unwrap();
        let a = s.sweep([0, 0, 0]);
        assert_eq!(a.cache, CacheStats::default(), "no cacheable key");
        assert_eq!(s.solves(), 3);
    }

    #[test]
    fn sweep_par_is_bitwise_identical_to_serial_at_any_thread_count() {
        for family in [
            TopologyFamily::FlatTree,
            TopologyFamily::KaryTree { arity: 2 },
            TopologyFamily::TransitStub { transit: 3 },
            TopologyFamily::Dumbbell,
        ] {
            let mut s = Scenario::builder()
                .label(family.label())
                .random_networks_with(family, 14, 4, 4)
                .allocator(MultiRate::new())
                .build()
                .unwrap();
            let serial = s.sweep(0..12);
            for threads in [1, 2, 3, 5, 8, 64] {
                let parallel = s.sweep_par(0..12, threads);
                assert_eq!(serial, parallel, "{} at {threads} threads", family.label());
            }
            // threads == 0 delegates to available_parallelism.
            assert_eq!(serial, s.sweep_par(0..12, 0));
        }
    }

    #[test]
    fn sweep_grid_par_matches_serial_order_and_bits() {
        let mut s = Scenario::builder()
            .random_networks(12, 4, 4)
            .allocator(MultiRate::new())
            .build()
            .unwrap();
        let grid = SweepGrid::seeds(0..5)
            .with_models([LinkRateModel::Efficient, LinkRateModel::Scaled(2.0)]);
        let serial = s.sweep_grid(&grid);
        for threads in [1, 2, 4, 7] {
            assert_eq!(
                serial,
                s.sweep_grid_par(&grid, threads),
                "{threads} threads"
            );
        }
        // Seeds-only grids go through the same job path.
        let seeds_only = SweepGrid::seeds(3..9);
        assert_eq!(s.sweep_grid(&seeds_only), s.sweep_grid_par(&seeds_only, 3));
    }

    #[test]
    fn degenerate_random_sources_are_rejected_at_build_time() {
        let err = Scenario::builder().random_networks(1, 3, 3).build().err();
        assert_eq!(
            err,
            Some(ScenarioError::Topology(
                mlf_net::TopologyError::TooFewNodes {
                    family: "flat-tree",
                    requested: 1,
                    minimum: 2,
                }
            ))
        );
        let err = Scenario::builder().random_networks(10, 0, 3).build().err();
        assert_eq!(
            err,
            Some(ScenarioError::Topology(mlf_net::TopologyError::NoSessions))
        );
        let err = Scenario::builder().random_networks(10, 3, 0).build().err();
        assert_eq!(
            err,
            Some(ScenarioError::Topology(mlf_net::TopologyError::NoReceivers))
        );
        let err = Scenario::builder()
            .random_networks_with(TopologyFamily::Dumbbell, 3, 2, 2)
            .build()
            .err();
        assert!(matches!(
            err,
            Some(ScenarioError::Topology(
                mlf_net::TopologyError::TooFewNodes { .. }
            ))
        ));
        let msg = err.unwrap().to_string();
        assert!(msg.contains("bad random-network source"), "{msg}");
    }

    #[test]
    fn family_sweeps_produce_structurally_distinct_points() {
        // The same seeds through two different families must not produce
        // identical sweeps (otherwise the family never reached the
        // generator).
        let sweep_for = |family| {
            Scenario::builder()
                .random_networks_with(family, 16, 4, 4)
                .allocator(MultiRate::new())
                .build()
                .unwrap()
                .sweep(0..8)
        };
        let flat = sweep_for(TopologyFamily::FlatTree);
        let dumbbell = sweep_for(TopologyFamily::Dumbbell);
        assert_ne!(flat.points, dumbbell.points);
    }

    #[test]
    fn grid_sweeps_cross_models_with_seeds() {
        let mut s = Scenario::builder()
            .random_networks(10, 3, 3)
            .allocator(MultiRate::new())
            .build()
            .unwrap();
        let grid = SweepGrid::seeds(0..4)
            .with_models([LinkRateModel::Efficient, LinkRateModel::Scaled(2.0)]);
        let report = s.sweep_grid(&grid);
        assert_eq!(report.points.len(), 8);
        // Lemma 4's direction in aggregate: redundancy shrinks min rates.
        let eff: Vec<&SweepPoint> = report
            .points
            .iter()
            .filter(|p| p.model == Some(LinkRateModel::Efficient))
            .collect();
        let red: Vec<&SweepPoint> = report
            .points
            .iter()
            .filter(|p| p.model == Some(LinkRateModel::Scaled(2.0)))
            .collect();
        for (e, r) in eff.iter().zip(&red) {
            assert!(r.metrics.min_rate <= e.metrics.min_rate + 1e-9);
        }
        // And the redundancy model must actually bite somewhere: at least
        // one seed's allocation strictly shrinks (guards against the model
        // override silently not reaching the allocator).
        assert!(
            eff.iter()
                .zip(&red)
                .any(|(e, r)| r.metrics.total_rate < e.metrics.total_rate - 1e-9),
            "Scaled(2.0) never changed any allocation across the grid"
        );
    }

    #[test]
    fn link_rates_reach_the_allocator() {
        // A Uniform(Scaled) scenario must produce a *different* allocation
        // from the efficient default on a network where redundancy binds.
        let net = two_branch_network();
        let efficient = Scenario::builder()
            .network(net.clone())
            .allocator(MultiRate::new())
            .build()
            .unwrap()
            .run();
        let scaled = Scenario::builder()
            .network(net)
            .allocator(MultiRate::new())
            .link_rates(LinkRates::Uniform(LinkRateModel::Scaled(4.0)))
            .build()
            .unwrap()
            .run();
        assert!(scaled.metrics.total_rate < efficient.metrics.total_rate - 1e-9);
    }

    #[test]
    fn weighted_rejects_non_efficient_link_rates() {
        let err = Scenario::builder()
            .network(two_branch_network())
            .allocator(Weighted::uniform())
            .link_rates(LinkRates::Uniform(LinkRateModel::Sum))
            .build()
            .err();
        assert_eq!(err, Some(ScenarioError::AllocatorIgnoresLinkRates));
    }

    #[test]
    fn layering_summary_reports_ladder_fits() {
        let mut s = Scenario::builder()
            .network(two_branch_network())
            .allocator(MultiRate::new())
            .layering(LayerSchedule::exponential(4)) // cumulative 1,2,4,8
            .build()
            .unwrap();
        let report = s.run();
        let summary = report.layering.unwrap();
        assert_eq!(summary.fits.len(), 3);
        // r1,1 fair rate 2 sits exactly on the ladder (level 2); r1,2 at 3
        // fits level 2 (cumulative 2) with deficit 1/3.
        assert_eq!(summary.fits[0].level, 2);
        assert!((summary.fits[0].deficit).abs() < 1e-9);
        assert!((summary.fits[1].deficit - 1.0 / 3.0).abs() < 1e-9);
        assert!(summary.mean_deficit() > 0.0);
    }

    #[test]
    fn weighted_allocator_composes_with_scenarios() {
        let mut g = Graph::new();
        let n = g.add_nodes(2);
        g.add_link(n[0], n[1], 9.0).unwrap();
        let net = Network::new(
            g,
            vec![Session::unicast(n[0], n[1]), Session::unicast(n[0], n[1])],
        )
        .unwrap();
        let mut s = Scenario::builder()
            .network(net)
            .allocator(Weighted::new(mlf_core::Weights::from_values(vec![
                vec![2.0],
                vec![1.0],
            ])))
            .build()
            .unwrap();
        let report = s.run();
        assert_eq!(report.solution.allocation.rates(), &[vec![6.0], vec![3.0]]);
    }
}
