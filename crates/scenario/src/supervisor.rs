//! The process-fleet supervisor: spawn, watch, kill, respawn, reap.
//!
//! [`ProcessTransport`] implements the coordinator's `WorkerTransport`
//! seam over a fleet of child worker processes. Each slot holds one
//! child (self-exec'd with the worker marker, speaking the framed
//! protocol of [`crate::transport`] over piped stdin/stdout) plus a
//! reader thread that turns the child's stdout frames into events on one
//! shared channel. The supervisor's job is purely *liveness*:
//!
//! * a worker silent past its heartbeat while holding an assignment is
//!   declared dead, killed, and reaped;
//! * a dead slot respawns with capped exponential backoff, up to
//!   `ProcessConfig::max_respawns` times, then stays down (**exhausted**);
//! * every death surfaces to the coordinator as a `Down` event so the
//!   lost assignment is requeued;
//! * shutdown and drop kill, wait on, and join everything — no zombies,
//!   whatever path the run exits through.
//!
//! Scheduling (which shard goes where, retry budgets, verification) all
//! stays in the coordinator's transport-generic event loop — the
//! supervisor only reports who is alive and moves bytes.

use crate::coordinator::{Assignment, FaultKind, FaultPlan, ProcessConfig, TaskId};
use crate::transport::{
    frame_bytes, read_frame, write_frame, Frame, ScenarioSpec, TransportCounters, TransportError,
    TransportPoll, WorkerInit, WorkerTransport, HEADER_BYTES, WORKER_ARG, WORKER_ENV,
};
use std::io::Write;
use std::path::PathBuf;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::thread::JoinHandle;
use std::time::Duration;

// mlf-lint: allow(ambient-entropy, reason = "monotonic clocks drive heartbeat and respawn scheduling only; computed bytes are a pure function of each assignment (see coordinator module docs)")
type Clock = std::time::Instant;

/// One event from a reader thread, tagged with the incarnation that
/// produced it so events from a replaced child are discarded.
struct RawEvent {
    worker: usize,
    generation: u64,
    kind: RawEventKind,
}

enum RawEventKind {
    Report(Box<crate::coordinator::WorkerReport>),
    Rejected,
    Down,
}

struct ChildSlot {
    child: Option<Child>,
    stdin: Option<ChildStdin>,
    reader: Option<JoinHandle<()>>,
    /// Bumped per spawn; stale reader events are dropped by comparison.
    generation: u64,
    respawns_used: u32,
    /// When a dead slot may respawn (capped exponential backoff).
    respawn_at: Option<Clock>,
    /// The respawn budget is spent; this slot is permanently down.
    exhausted: bool,
    /// Heartbeat deadline while the child holds an assignment.
    busy_until: Option<Clock>,
}

impl ChildSlot {
    fn new() -> Self {
        ChildSlot {
            child: None,
            stdin: None,
            reader: None,
            generation: 0,
            respawns_used: 0,
            respawn_at: None,
            exhausted: false,
            busy_until: None,
        }
    }
}

fn reader_loop(worker: usize, generation: u64, stdout: ChildStdout, tx: Sender<RawEvent>) {
    let mut reader = std::io::BufReader::new(stdout);
    loop {
        let kind = match read_frame(&mut reader) {
            Ok(Some(Frame::Report(rep))) => RawEventKind::Report(Box::new(rep)),
            Ok(Some(Frame::Reject { .. })) => RawEventKind::Rejected,
            // EOF, a stream-level error, or an out-of-protocol frame: the
            // child is gone or cannot be trusted — either way, Down.
            _ => {
                let _ = tx.send(RawEvent {
                    worker,
                    generation,
                    kind: RawEventKind::Down,
                });
                return;
            }
        };
        if tx
            .send(RawEvent {
                worker,
                generation,
                kind,
            })
            .is_err()
        {
            return;
        }
    }
}

/// A supervised fleet of child worker processes.
pub(crate) struct ProcessTransport {
    program: PathBuf,
    spec: ScenarioSpec,
    plan: FaultPlan,
    stall: Duration,
    spill_dir: Option<PathBuf>,
    cfg: ProcessConfig,
    slots: Vec<ChildSlot>,
    events_tx: Sender<RawEvent>,
    events_rx: Receiver<RawEvent>,
    counters: TransportCounters,
}

impl ProcessTransport {
    /// Spawn the initial fleet. Failure to spawn *any* initial child is
    /// fatal (the machine cannot exec the worker binary at all); every
    /// later failure is absorbed as a down worker.
    pub(crate) fn launch(
        spec: ScenarioSpec,
        workers: usize,
        cfg: ProcessConfig,
        plan: FaultPlan,
        stall: Duration,
        spill_dir: Option<PathBuf>,
    ) -> Result<ProcessTransport, TransportError> {
        let program = match cfg.program.clone() {
            Some(p) => p,
            None => std::env::current_exe().map_err(|e| TransportError::Io {
                op: "current_exe",
                message: e.to_string(),
            })?,
        };
        let (events_tx, events_rx) = channel();
        let mut fleet = ProcessTransport {
            program,
            spec,
            plan,
            stall,
            spill_dir,
            cfg,
            slots: (0..workers.max(1)).map(|_| ChildSlot::new()).collect(),
            events_tx,
            events_rx,
            counters: TransportCounters::default(),
        };
        for w in 0..fleet.slots.len() {
            fleet.spawn_child(w)?;
        }
        Ok(fleet)
    }

    /// Spawn (or respawn) slot `w`'s child and send its `Init` frame.
    /// `Err` means the OS could not spawn at all; an unreachable child
    /// after a successful spawn is marked down instead (`Ok`).
    fn spawn_child(&mut self, w: usize) -> Result<(), TransportError> {
        let mut child = Command::new(&self.program)
            .arg(WORKER_ARG)
            .env(WORKER_ENV, "1")
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .map_err(|e| TransportError::Io {
                op: "spawn",
                message: e.to_string(),
            })?;
        let stdin = child.stdin.take();
        let stdout = child.stdout.take();
        let tx = self.events_tx.clone();
        let slot = &mut self.slots[w];
        // The previous incarnation's reader (if any) has already seen EOF;
        // joining is cheap and keeps thread handles from piling up.
        if let Some(h) = slot.reader.take() {
            let _ = h.join();
        }
        slot.generation += 1;
        let generation = slot.generation;
        slot.reader =
            stdout.map(|out| std::thread::spawn(move || reader_loop(w, generation, out, tx)));
        slot.child = Some(child);
        slot.stdin = None;
        slot.busy_until = None;
        let init = Frame::Init(WorkerInit {
            worker: w,
            stall: self.stall,
            spill: self
                .spill_dir
                .as_ref()
                .map(|d| d.join(format!("worker-{w}.spill"))),
            plan: self.plan.clone(),
            spec: self.spec.clone(),
        });
        let mut sin = match stdin {
            Some(s) => s,
            None => {
                self.mark_down(w);
                return Ok(());
            }
        };
        if write_frame(&mut sin, &init).is_err() {
            self.mark_down(w);
            return Ok(());
        }
        self.slots[w].stdin = Some(sin);
        Ok(())
    }

    /// Kill, reap, and deregister slot `w`'s child (if any), then either
    /// schedule a respawn with capped backoff or mark the slot exhausted.
    fn mark_down(&mut self, w: usize) {
        let slot = &mut self.slots[w];
        slot.stdin = None;
        if let Some(mut child) = slot.child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
        // Safe to join: the child is reaped, so its stdout pipe is at EOF
        // and the reader exits (its channel sends never block).
        if let Some(h) = slot.reader.take() {
            let _ = h.join();
        }
        slot.busy_until = None;
        if slot.respawns_used >= self.cfg.max_respawns {
            slot.exhausted = true;
            slot.respawn_at = None;
        } else {
            slot.respawns_used += 1;
            let shift = slot.respawns_used.saturating_sub(1).min(16);
            let delay = self
                .cfg
                .respawn_backoff
                .saturating_mul(1u32 << shift)
                .min(self.cfg.respawn_backoff_cap);
            slot.respawn_at = Some(Clock::now() + delay);
        }
    }

    /// Kill, reap, and join every remaining child and reader.
    fn reap_all(&mut self) {
        for slot in &mut self.slots {
            slot.stdin = None;
            if let Some(mut child) = slot.child.take() {
                let _ = child.kill();
                let _ = child.wait();
            }
            if let Some(h) = slot.reader.take() {
                let _ = h.join();
            }
        }
    }
}

impl WorkerTransport for ProcessTransport {
    fn worker_count(&self) -> usize {
        self.slots.len()
    }

    fn usable(&self, worker: usize) -> bool {
        !self.slots[worker].exhausted
    }

    fn try_send(&mut self, worker: usize, assignment: &Assignment) -> bool {
        if self.slots[worker].exhausted {
            return false;
        }
        if self.slots[worker].child.is_none() {
            if matches!(self.slots[worker].respawn_at, Some(t) if t > Clock::now()) {
                return false;
            }
            if self.spawn_child(worker).is_err() {
                // The OS refused the spawn; burn a respawn attempt so a
                // persistently unspawnable slot eventually exhausts.
                self.mark_down(worker);
                return false;
            }
            self.counters.respawns += 1;
        }
        if self.slots[worker].stdin.is_none() {
            // The fresh child died before taking its Init frame.
            return false;
        }
        let fault = match assignment.task {
            TaskId::Shard(_) => self
                .plan
                .fires(worker, assignment.shard, assignment.attempt),
            TaskId::Spot(_) => None,
        };
        let mut bytes = frame_bytes(&Frame::Assign(assignment.clone()));
        if matches!(fault, Some(FaultKind::TornFrame)) {
            // Damage one payload byte, length intact: the child's frame
            // checksum fails, it answers Reject, and the stream resyncs
            // on the next frame boundary.
            bytes[HEADER_BYTES] ^= 0x40;
        }
        let write_ok = match self.slots[worker].stdin.as_mut() {
            Some(sin) => sin.write_all(&bytes).and_then(|_| sin.flush()).is_ok(),
            None => false,
        };
        if !write_ok {
            self.counters.workers_lost += 1;
            self.mark_down(worker);
            return false;
        }
        if matches!(fault, Some(FaultKind::KillProcess)) {
            // A real mid-shard SIGKILL. The worker also self-exits on
            // this fault, so whichever lands first the coordinator
            // observes the same thing: a dead worker, a requeued shard.
            if let Some(child) = self.slots[worker].child.as_mut() {
                let _ = child.kill();
            }
        }
        self.slots[worker].busy_until = Some(Clock::now() + self.cfg.heartbeat);
        true
    }

    fn recv_timeout(&mut self, wait: Duration) -> TransportPoll {
        let deadline = Clock::now() + wait;
        loop {
            if self.slots.iter().all(|s| s.exhausted) {
                return TransportPoll::AllDown;
            }
            // Heartbeat sweep: a child silent past its deadline while
            // holding work is dead to us, whatever the kernel thinks.
            let now = Clock::now();
            for w in 0..self.slots.len() {
                if matches!(self.slots[w].busy_until, Some(t) if t <= now)
                    && self.slots[w].child.is_some()
                {
                    self.counters.workers_lost += 1;
                    self.mark_down(w);
                    return TransportPoll::Down { worker: w };
                }
            }
            // Wake for the earliest interesting instant: the caller's
            // deadline, a heartbeat, or a respawn maturing.
            let mut wake = deadline;
            for s in &self.slots {
                if let Some(t) = s.busy_until {
                    wake = wake.min(t);
                }
                if s.child.is_none() && !s.exhausted {
                    if let Some(t) = s.respawn_at {
                        wake = wake.min(t);
                    }
                }
            }
            let now = Clock::now();
            let wait = wake
                .saturating_duration_since(now)
                .max(Duration::from_millis(1));
            match self.events_rx.recv_timeout(wait) {
                Ok(ev) => {
                    if ev.generation != self.slots[ev.worker].generation {
                        // A replaced incarnation's event: obsolete.
                        continue;
                    }
                    match ev.kind {
                        RawEventKind::Report(rep) => {
                            self.slots[ev.worker].busy_until = None;
                            let mut rep = *rep;
                            // Trust the slot, not the wire, for identity.
                            rep.worker = ev.worker;
                            return TransportPoll::Report(rep);
                        }
                        RawEventKind::Rejected => {
                            self.slots[ev.worker].busy_until = None;
                            return TransportPoll::Rejected { worker: ev.worker };
                        }
                        RawEventKind::Down => {
                            if self.slots[ev.worker].child.is_none() {
                                // Already marked down (send failure or
                                // heartbeat beat the reader to it).
                                continue;
                            }
                            self.counters.workers_lost += 1;
                            self.mark_down(ev.worker);
                            return TransportPoll::Down { worker: ev.worker };
                        }
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    let now = Clock::now();
                    if now >= deadline {
                        return TransportPoll::Timeout;
                    }
                    // A respawn matured: report a timeout so the
                    // coordinator's dispatch pass retries the slot.
                    let matured = self.slots.iter().any(|s| {
                        s.child.is_none() && !s.exhausted && s.respawn_at.map_or(true, |t| t <= now)
                    });
                    if matured {
                        return TransportPoll::Timeout;
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    // Unreachable while we hold a sender; be safe anyway.
                    return TransportPoll::AllDown;
                }
            }
        }
    }

    fn shutdown(&mut self) {
        // Ask nicely: a Shutdown frame, then EOF on stdin.
        for slot in &mut self.slots {
            if let Some(sin) = slot.stdin.as_mut() {
                let _ = write_frame(sin, &Frame::Shutdown);
            }
            slot.stdin = None;
        }
        // Grace window for clean exits (flushed spill segments, no
        // half-written anything), then force the stragglers.
        let grace = Clock::now() + Duration::from_millis(500);
        loop {
            let mut alive = false;
            for slot in &mut self.slots {
                if let Some(child) = slot.child.as_mut() {
                    match child.try_wait() {
                        Ok(Some(_)) => slot.child = None,
                        Ok(None) => alive = true,
                        Err(_) => slot.child = None,
                    }
                }
            }
            if !alive || Clock::now() >= grace {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        self.reap_all();
    }

    fn counters(&self) -> TransportCounters {
        self.counters
    }
}

impl Drop for ProcessTransport {
    fn drop(&mut self) {
        // No zombies on any exit path, including panics: `shutdown` makes
        // this a no-op, every other path still kills, waits, and joins.
        self.reap_all();
    }
}
