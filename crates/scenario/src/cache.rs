//! The cross-sweep topology/solve cache.
//!
//! Grid sweeps re-derive the same work over and over: `sweep_grid` visits
//! every `(link-rate model, seed)` cell, rebuilding the seeded topology
//! once *per model* and re-solving cells that repeat across sweep calls
//! (benches, figure binaries that sweep the same grid with different
//! reporting, warm re-runs). A [`SolveCache`] memoizes both layers:
//!
//! * **Topology cache** — built [`Network`]s keyed by
//!   [`TopologyKey`] `(family, shape params, seed)`, shared across every
//!   model of a grid, behind an [`Arc`] so a hit costs one refcount.
//! * **Solve cache** — finished [`SweepPoint`]s keyed by [`SolveKey`]
//!   `(family, shape params, seed, effective link-rate model)`.
//!
//! # Cache-key semantics (what invalidates an entry)
//!
//! A key captures *everything* that can change a sweep point inside one
//! scenario: the topology family and its shape parameters, the seed, and
//! the **effective** uniform link-rate model (a grid override of
//! `Scaled(2.0)` and a scenario default of `Uniform(Scaled(2.0))` are the
//! same solve and share an entry; model parameters are compared by exact
//! bit pattern, so `Scaled(2.0)` and `Scaled(2.0 + ε)` never collide).
//! Everything else that shapes a point — the allocator configuration and
//! the property-audit switch — enters the key as the `scenario` identity
//! digest, derived from the allocator's
//! [`cache_signature`](mlf_core::Allocator::cache_signature). Scenarios
//! whose link rates are an explicit per-session
//! [`LinkRateConfig`](mlf_core::LinkRateConfig) are not representable as a
//! uniform model key and bypass the cache entirely.
//!
//! Caches come in two ownership shapes. A scenario-owned cache (the
//! default, plus one per parallel worker) sees a single configuration for
//! its whole life. A [`SharedSolveCache`] handle can additionally be
//! cloned into several scenarios that differ only in reporting, pooling
//! their solves; the `scenario` key component keeps configurations that
//! *do* differ in solve-relevant ways on disjoint entries, and an
//! allocator that cannot state its signature (`cache_signature() ==
//! None`) simply bypasses the shared pool.
//!
//! Entries never expire by time; capacity is the only pressure. Both maps
//! evict in insertion (FIFO) order once their capacity is reached, and
//! solve-entry evictions are reported in [`CacheStats::evictions`].
//!
//! # Determinism
//!
//! A hit returns a clone of a point the same scenario previously computed
//! from the same key — and every point is a pure function of its key
//! within a scenario — so cached sweeps are **bitwise identical** to
//! uncached ones. The parallel executors give each worker its own cache
//! (worker-local state, like its `SolverWorkspace`), preserving the
//! serial/parallel bitwise contract at any thread count.

use crate::spill::{SpillStats, SpillTier};
use crate::SweepPoint;
use mlf_core::LinkRateModel;
use mlf_net::{Network, TopologyFamily};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

/// Bytes in one [`SolveKey::encode`] image: family tag (1) + family
/// parameter (8) + nodes/sessions/max_receivers/seed (4 × 8) + model tag
/// (1) + model bits (8) + scenario digest (8).
pub(crate) const SOLVE_KEY_BYTES: usize = 58;

/// Default bound on memoized sweep points.
// mlf-lint: allow(unused-pub, reason = "documented public API; doc examples and links are invisible to the analyzer")
pub const DEFAULT_POINT_CAPACITY: usize = 4096;
/// Default bound on memoized built topologies.
// mlf-lint: allow(unused-pub, reason = "documented public API; doc examples and links are invisible to the analyzer")
pub const DEFAULT_NETWORK_CAPACITY: usize = 256;

/// Cache telemetry: solve-cache hits/misses and capacity evictions.
///
/// Reported on [`SweepReport::cache`](crate::SweepReport::cache) so
/// examples and figure binaries can print cache effectiveness. Telemetry
/// is execution-history-dependent (a warm scenario hits where a cold one
/// misses) and therefore deliberately **not** part of `SweepReport`
/// equality.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Sweep points served from the cache.
    pub hits: u64,
    /// Sweep points that had to be solved.
    pub misses: u64,
    /// Solve entries dropped to the capacity bound.
    pub evictions: u64,
}

impl CacheStats {
    /// Total lookups (`hits + misses`).
    // mlf-lint: allow(unused-pub, reason = "documented public API; doc examples and links are invisible to the analyzer")
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups served from cache (0 when there were none).
    // mlf-lint: allow(unused-pub, reason = "intentional API surface kept public alongside its siblings")
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }

    /// Accumulate another stats block (merging parallel workers).
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
    }

    /// The counters accumulated since `before` was captured (one sweep's
    /// share of a longer-lived cache's totals). Saturating: passing
    /// snapshots in the wrong order yields zeros, not wrapped counts.
    pub fn since(&self, before: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(before.hits),
            misses: self.misses.saturating_sub(before.misses),
            evictions: self.evictions.saturating_sub(before.evictions),
        }
    }
}

/// Hashable identity of a topology family (model parameters by bit
/// pattern, so keys are `Eq + Hash` despite the `f64`s upstream).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum FamilyKey {
    /// A fixed network (shape parameters unused).
    Fixed,
    FlatTree,
    KaryTree(usize),
    TransitStub(usize),
    Dumbbell,
}

impl From<TopologyFamily> for FamilyKey {
    fn from(f: TopologyFamily) -> Self {
        match f {
            TopologyFamily::FlatTree => FamilyKey::FlatTree,
            TopologyFamily::KaryTree { arity } => FamilyKey::KaryTree(arity),
            TopologyFamily::TransitStub { transit } => FamilyKey::TransitStub(transit),
            TopologyFamily::Dumbbell => FamilyKey::Dumbbell,
        }
    }
}

/// Hashable identity of a uniform link-rate model (parameters by exact bit
/// pattern).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum ModelKey {
    Efficient,
    Scaled(u64),
    Sum,
    RandomJoin(u64),
}

impl From<LinkRateModel> for ModelKey {
    fn from(m: LinkRateModel) -> Self {
        match m {
            LinkRateModel::Efficient => ModelKey::Efficient,
            LinkRateModel::Scaled(v) => ModelKey::Scaled(v.to_bits()),
            LinkRateModel::Sum => ModelKey::Sum,
            LinkRateModel::RandomJoin { sigma } => ModelKey::RandomJoin(sigma.to_bits()),
        }
    }
}

/// The identity of one seeded topology build: `(family, shape, seed)`.
// mlf-lint: allow(unused-pub, reason = "documented public API; doc examples and links are invisible to the analyzer")
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TopologyKey {
    family: FamilyKey,
    nodes: usize,
    sessions: usize,
    max_receivers: usize,
    seed: u64,
}

impl TopologyKey {
    /// A key for one seed of a random-network source.
    // mlf-lint: allow(unused-pub, reason = "documented public API; doc examples and links are invisible to the analyzer")
    pub fn random(
        family: TopologyFamily,
        nodes: usize,
        sessions: usize,
        max_receivers: usize,
        seed: u64,
    ) -> Self {
        TopologyKey {
            family: family.into(),
            nodes,
            sessions,
            max_receivers,
            seed,
        }
    }

    /// The key of a fixed-network source. Fixed solves are
    /// seed-independent (the sweep seed only labels the produced point),
    /// so every seed shares one entry — the cache consumer restores the
    /// requesting seed on its point, like it restores the model label.
    pub fn fixed() -> Self {
        TopologyKey {
            family: FamilyKey::Fixed,
            nodes: 0,
            sessions: 0,
            max_receivers: 0,
            seed: 0,
        }
    }
}

/// The identity of one sweep point's solve: a [`TopologyKey`], the
/// effective uniform link-rate model, and the owning scenario's
/// solve-relevant identity.
///
/// The `scenario` component is an FNV-1a digest of everything *outside*
/// the key that can still change a solve's bytes — the allocator's
/// [`cache_signature`](mlf_core::Allocator::cache_signature) and the
/// property-audit switch. Scenario-owned caches always see a single
/// scenario and could omit it; a [`SharedSolveCache`] spanning scenarios
/// that differ only in reporting relies on it to keep distinct allocators
/// from colliding while letting solve-identical scenarios share entries.
// mlf-lint: allow(unused-pub, reason = "documented public API; doc examples and links are invisible to the analyzer")
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SolveKey {
    topology: TopologyKey,
    model: ModelKey,
    scenario: u64,
}

impl SolveKey {
    /// A key from the topology identity, the effective model, and the
    /// scenario's solve-relevant identity digest.
    pub fn new(topology: TopologyKey, model: LinkRateModel, scenario: u64) -> Self {
        SolveKey {
            topology,
            model: model.into(),
            scenario,
        }
    }

    /// The topology component (what the network cache is keyed by).
    pub fn topology(&self) -> TopologyKey {
        self.topology
    }

    /// Canonical fixed-width encoding of this key, the on-disk identity
    /// used by the spill segment format (see [`crate::spill`]). Injective
    /// on key values: model/family parameters are stored as raw bit
    /// patterns, matching the in-memory `Eq`/`Hash` semantics.
    pub(crate) fn encode(&self) -> [u8; SOLVE_KEY_BYTES] {
        let mut out = [0u8; SOLVE_KEY_BYTES];
        let (ftag, fparam): (u8, u64) = match self.topology.family {
            FamilyKey::Fixed => (0, 0),
            FamilyKey::FlatTree => (1, 0),
            FamilyKey::KaryTree(arity) => (2, arity as u64),
            FamilyKey::TransitStub(transit) => (3, transit as u64),
            FamilyKey::Dumbbell => (4, 0),
        };
        out[0] = ftag;
        out[1..9].copy_from_slice(&fparam.to_le_bytes());
        out[9..17].copy_from_slice(&(self.topology.nodes as u64).to_le_bytes());
        out[17..25].copy_from_slice(&(self.topology.sessions as u64).to_le_bytes());
        out[25..33].copy_from_slice(&(self.topology.max_receivers as u64).to_le_bytes());
        out[33..41].copy_from_slice(&self.topology.seed.to_le_bytes());
        let (mtag, mbits): (u8, u64) = match self.model {
            ModelKey::Efficient => (0, 0),
            ModelKey::Scaled(bits) => (1, bits),
            ModelKey::Sum => (2, 0),
            ModelKey::RandomJoin(bits) => (3, bits),
        };
        out[41] = mtag;
        out[42..50].copy_from_slice(&mbits.to_le_bytes());
        out[50..58].copy_from_slice(&self.scenario.to_le_bytes());
        out
    }

    /// Inverse of [`SolveKey::encode`]. `Err` carries the reason a byte
    /// image is not a key (wrong length, unknown tags).
    pub(crate) fn decode(bytes: &[u8]) -> Result<SolveKey, String> {
        if bytes.len() != SOLVE_KEY_BYTES {
            return Err(format!(
                "encoded solve key is {} bytes, expected {SOLVE_KEY_BYTES}",
                bytes.len()
            ));
        }
        let u64_at = |off: usize| -> u64 {
            let mut b = [0u8; 8];
            b.copy_from_slice(&bytes[off..off + 8]);
            u64::from_le_bytes(b)
        };
        let fparam = u64_at(1);
        let family = match bytes[0] {
            0 => FamilyKey::Fixed,
            1 => FamilyKey::FlatTree,
            2 => FamilyKey::KaryTree(fparam as usize),
            3 => FamilyKey::TransitStub(fparam as usize),
            4 => FamilyKey::Dumbbell,
            tag => return Err(format!("unknown family tag {tag}")),
        };
        let model = match bytes[41] {
            0 => ModelKey::Efficient,
            1 => ModelKey::Scaled(u64_at(42)),
            2 => ModelKey::Sum,
            3 => ModelKey::RandomJoin(u64_at(42)),
            tag => return Err(format!("unknown model tag {tag}")),
        };
        Ok(SolveKey {
            topology: TopologyKey {
                family,
                nodes: u64_at(9) as usize,
                sessions: u64_at(17) as usize,
                max_receivers: u64_at(25) as usize,
                seed: u64_at(33),
            },
            model,
            scenario: u64_at(50),
        })
    }
}

/// A bounded FIFO memo of solved sweep points and built topologies (see
/// the [module docs](self) for key semantics and the determinism
/// argument).
#[derive(Debug, Default)]
pub struct SolveCache {
    point_capacity: usize,
    network_capacity: usize,
    points: HashMap<SolveKey, SweepPoint>,
    point_order: VecDeque<SolveKey>,
    networks: HashMap<TopologyKey, Arc<Network>>,
    network_order: VecDeque<TopologyKey>,
    stats: CacheStats,
    /// Optional disk tier: evicted points spill to an append-only segment
    /// file and in-memory misses consult it before recomputing (see
    /// [`crate::spill`]). `None` (the default) is the plain bounded FIFO.
    spill: Option<SpillTier>,
}

impl SolveCache {
    /// A cache with the default capacities.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_POINT_CAPACITY, DEFAULT_NETWORK_CAPACITY)
    }

    /// A cache bounded to `points` memoized solves and `networks` built
    /// topologies. A zero `points` capacity disables solve memoization
    /// (topology reuse still applies unless `networks` is also zero).
    pub fn with_capacity(points: usize, networks: usize) -> Self {
        SolveCache {
            point_capacity: points,
            network_capacity: networks,
            ..SolveCache::default()
        }
    }

    /// Lifetime counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of memoized sweep points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether no sweep points are memoized.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The configured solve-entry capacity.
    // mlf-lint: allow(unused-pub, reason = "intentional API surface kept public alongside its siblings")
    pub fn point_capacity(&self) -> usize {
        self.point_capacity
    }

    /// The configured topology-entry capacity.
    // mlf-lint: allow(unused-pub, reason = "intentional API surface kept public alongside its siblings")
    pub fn network_capacity(&self) -> usize {
        self.network_capacity
    }

    /// Look up a memoized point, consulting the disk spill tier (when
    /// attached) on an in-memory miss. Counts a hit or a miss; a spill
    /// hit is promoted back into the in-memory FIFO.
    pub fn point(&mut self, key: &SolveKey) -> Option<SweepPoint> {
        if let Some(p) = self.points.get(key) {
            self.stats.hits += 1;
            return Some(p.clone());
        }
        if let Some(p) = self.spill.as_mut().and_then(|s| s.lookup(key)) {
            self.stats.hits += 1;
            self.insert_point(*key, p.clone());
            return Some(p);
        }
        self.stats.misses += 1;
        None
    }

    /// Memoize a freshly solved point (evicting the oldest entry at
    /// capacity; with a spill tier attached, the victim is appended to
    /// disk instead of dropped). No-op when solve memoization is
    /// disabled.
    pub(crate) fn insert_point(&mut self, key: SolveKey, point: SweepPoint) {
        if self.point_capacity == 0 {
            return;
        }
        if !self.points.contains_key(&key) {
            if self.points.len() >= self.point_capacity {
                if let Some(oldest) = self.point_order.pop_front() {
                    if let Some(victim) = self.points.remove(&oldest) {
                        self.stats.evictions += 1;
                        if let Some(spill) = self.spill.as_mut() {
                            spill.spill(&oldest, &victim);
                        }
                    }
                }
            }
            self.point_order.push_back(key);
        }
        self.points.insert(key, point);
    }

    /// Attach a disk spill tier: from now on evictions append to the
    /// segment and in-memory misses consult it. Replaces any previous
    /// tier.
    pub(crate) fn attach_spill(&mut self, tier: SpillTier) {
        self.spill = Some(tier);
    }

    /// The spill tier's telemetry, when one is attached.
    pub(crate) fn spill_stats(&self) -> Option<SpillStats> {
        self.spill.as_ref().map(|s| s.stats())
    }

    /// The built topology for `key`, building (and memoizing) it on first
    /// use. Does not touch the hit/miss counters — topology reuse is the
    /// mechanism *inside* a solve miss, not a separate lookup class.
    pub fn network(&mut self, key: TopologyKey, build: impl FnOnce() -> Network) -> Arc<Network> {
        if let Some(net) = self.networks.get(&key) {
            return Arc::clone(net);
        }
        let net = Arc::new(build());
        if self.network_capacity > 0 {
            if self.networks.len() >= self.network_capacity {
                if let Some(oldest) = self.network_order.pop_front() {
                    self.networks.remove(&oldest);
                }
            }
            self.network_order.push_back(key);
            self.networks.insert(key, Arc::clone(&net));
        }
        net
    }

    /// Drop every in-memory entry (counters are preserved — they
    /// describe history, not contents). An attached spill segment is
    /// left untouched: its records are still valid memoized points.
    pub fn clear(&mut self) {
        self.points.clear();
        self.point_order.clear();
        self.networks.clear();
        self.network_order.clear();
    }
}

/// A cloneable handle to one [`SolveCache`] shared by several scenarios.
///
/// Scenarios that differ only in *reporting* — same source, same link
/// rates, same allocator configuration, same property-audit switch —
/// perform bitwise-identical solves, so re-solving the grid once per
/// scenario is pure waste. A `SharedSolveCache` lets them pool one memo:
/// clone the handle into each [`ScenarioBuilder`](crate::ScenarioBuilder)
/// via [`shared_cache`](crate::ScenarioBuilder::shared_cache).
///
/// Safety of sharing rests on the `scenario` component of [`SolveKey`]:
/// scenarios whose solve-relevant identity differs (different allocator
/// signature or audit switch) key disjoint entries and can share a handle
/// without ever observing each other's points. An allocator that cannot
/// cheaply describe its solve identity (`cache_signature() == None`)
/// makes the scenario bypass a shared cache entirely — correctness over
/// reuse.
///
/// Sharing is by mutex: serial sweeps hold the lock for the whole sweep
/// (one acquisition, not one per point). Lock *scheduling* never affects
/// results — every point is a pure function of its key, so whichever
/// scenario populates an entry first, the bytes are the same. Parallel
/// sweeps keep worker-local caches and do not consult the shared handle.
#[derive(Debug, Clone, Default)]
pub struct SharedSolveCache {
    inner: Arc<Mutex<SolveCache>>,
}

impl SharedSolveCache {
    /// A shared cache with the default capacities.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_POINT_CAPACITY, DEFAULT_NETWORK_CAPACITY)
    }

    /// A shared cache bounded like [`SolveCache::with_capacity`].
    pub fn with_capacity(points: usize, networks: usize) -> Self {
        SharedSolveCache {
            inner: Arc::new(Mutex::new(SolveCache::with_capacity(points, networks))),
        }
    }

    /// Lock the underlying cache. Poisoning is survivable here: the cache
    /// is a memo whose entries are pure functions of their keys, so state
    /// left by a panicking holder is either absent or correct.
    pub(crate) fn lock(&self) -> std::sync::MutexGuard<'_, SolveCache> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Lifetime counters of the pooled cache.
    pub fn stats(&self) -> CacheStats {
        self.lock().stats()
    }

    /// Number of memoized sweep points in the pooled cache.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the pooled cache has no memoized sweep points.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Drop every pooled entry (counters are preserved).
    pub fn clear(&self) {
        self.lock().clear()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScenarioMetrics;

    fn dummy_point(seed: u64) -> SweepPoint {
        SweepPoint {
            seed,
            model: None,
            metrics: ScenarioMetrics {
                jain_index: 1.0,
                min_rate: seed as f64,
                total_rate: 2.0 * seed as f64,
                satisfaction: 0.5,
                iterations: 3,
            },
            properties_holding: Some(4),
        }
    }

    fn key(seed: u64, model: LinkRateModel) -> SolveKey {
        SolveKey::new(
            TopologyKey::random(TopologyFamily::FlatTree, 10, 3, 3, seed),
            model,
            0,
        )
    }

    #[test]
    fn hits_misses_and_evictions_are_counted() {
        let mut c = SolveCache::with_capacity(2, 2);
        let k0 = key(0, LinkRateModel::Efficient);
        let k1 = key(1, LinkRateModel::Efficient);
        let k2 = key(2, LinkRateModel::Efficient);
        assert!(c.point(&k0).is_none());
        c.insert_point(k0, dummy_point(0));
        assert_eq!(c.point(&k0).unwrap().seed, 0);
        assert!(c.point(&k1).is_none());
        c.insert_point(k1, dummy_point(1));
        assert!(c.point(&k2).is_none());
        c.insert_point(k2, dummy_point(2)); // evicts k0 (FIFO)
        assert!(c.point(&k0).is_none(), "oldest entry evicted");
        assert_eq!(c.point(&k2).unwrap().seed, 2);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (2, 4, 1));
        assert_eq!(s.lookups(), 6);
        assert!((s.hit_rate() - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn behavior_depends_only_on_the_operation_sequence() {
        // Every `SolveCache` instance owns `HashMap`s with their own
        // `RandomState` seeds, so any internal reliance on map iteration
        // order (e.g. for eviction) would make two caches replaying the
        // same operation trace diverge. Replay several permuted traces on
        // independent instances and require identical per-op results,
        // identical stats, and identical surviving entries.
        let orders: [[u64; 6]; 4] = [
            [0, 1, 2, 3, 4, 5],
            [5, 4, 3, 2, 1, 0],
            [3, 0, 5, 2, 4, 1],
            [2, 5, 0, 4, 1, 3],
        ];
        for order in orders {
            let run = |order: &[u64]| {
                let mut c = SolveCache::with_capacity(3, 3);
                let mut trace = Vec::new();
                for &s in order {
                    let k = key(s, LinkRateModel::Efficient);
                    trace.push(c.point(&k).map(|p| p.seed));
                    c.insert_point(k, dummy_point(s));
                }
                // Final lookups over every key: capacity 3 must have kept
                // exactly the last three inserts, FIFO order, regardless of
                // the maps' hash seeds.
                for &s in order {
                    trace.push(c.point(&key(s, LinkRateModel::Efficient)).map(|p| p.seed));
                }
                (trace, c.stats())
            };
            let (trace_a, stats_a) = run(&order);
            let (trace_b, stats_b) = run(&order);
            assert_eq!(trace_a, trace_b, "instance-dependent trace for {order:?}");
            assert_eq!(stats_a, stats_b, "instance-dependent stats for {order:?}");
            let survivors: Vec<Option<u64>> = order[..3].iter().map(|_| None).collect();
            assert_eq!(
                &trace_a[6..9],
                &survivors[..],
                "first three inserts of {order:?} must be evicted (FIFO)"
            );
            assert_eq!(
                &trace_a[9..],
                &order[3..].iter().map(|&s| Some(s)).collect::<Vec<_>>()[..],
                "last three inserts of {order:?} must survive"
            );
        }
    }

    #[test]
    fn solve_key_codec_round_trips() {
        let keys = [
            SolveKey::new(TopologyKey::fixed(), LinkRateModel::Efficient, 0),
            SolveKey::new(
                TopologyKey::random(TopologyFamily::FlatTree, 10, 3, 3, 5),
                LinkRateModel::Scaled(2.0),
                9,
            ),
            SolveKey::new(
                TopologyKey::random(TopologyFamily::KaryTree { arity: 4 }, 30, 8, 5, 77),
                LinkRateModel::RandomJoin { sigma: 6.0 },
                u64::MAX,
            ),
            SolveKey::new(
                TopologyKey::random(TopologyFamily::TransitStub { transit: 3 }, 40, 6, 6, 1),
                LinkRateModel::Sum,
                1,
            ),
            SolveKey::new(
                TopologyKey::random(TopologyFamily::Dumbbell, 12, 2, 4, 2),
                LinkRateModel::Efficient,
                2,
            ),
        ];
        for k in keys {
            assert_eq!(SolveKey::decode(&k.encode()), Ok(k), "codec round trip");
        }
        assert!(SolveKey::decode(&[0u8; 10]).is_err(), "wrong length");
        let mut bad_family = keys[0].encode();
        bad_family[0] = 9;
        assert!(SolveKey::decode(&bad_family).is_err(), "unknown family tag");
        let mut bad_model = keys[0].encode();
        bad_model[41] = 9;
        assert!(SolveKey::decode(&bad_model).is_err(), "unknown model tag");
    }

    #[test]
    fn model_parameters_key_by_bit_pattern() {
        let mut c = SolveCache::new();
        c.insert_point(key(0, LinkRateModel::Scaled(2.0)), dummy_point(0));
        assert!(c.point(&key(0, LinkRateModel::Scaled(2.0))).is_some());
        assert!(c
            .point(&key(0, LinkRateModel::Scaled(2.0 + 1e-12)))
            .is_none());
        assert!(c
            .point(&key(0, LinkRateModel::RandomJoin { sigma: 2.0 }))
            .is_none());
        assert!(c.point(&key(0, LinkRateModel::Efficient)).is_none());
    }

    #[test]
    fn zero_capacity_disables_memoization() {
        let mut c = SolveCache::with_capacity(0, 0);
        let k = key(7, LinkRateModel::Sum);
        c.insert_point(k, dummy_point(7));
        assert!(c.point(&k).is_none());
        assert_eq!(c.stats().evictions, 0);
        // Networks are rebuilt every time at zero capacity.
        let mut builds = 0;
        for _ in 0..2 {
            let _ = c.network(TopologyKey::fixed(), || {
                builds += 1;
                mlf_net::topology::random_network(0, 6, 2, 2).unwrap()
            });
        }
        assert_eq!(builds, 2);
    }

    #[test]
    fn network_cache_builds_once_per_key() {
        let mut c = SolveCache::new();
        let tk = TopologyKey::random(TopologyFamily::FlatTree, 12, 4, 4, 3);
        let mut builds = 0;
        for _ in 0..3 {
            let net = c.network(tk, || {
                builds += 1;
                mlf_net::topology::random_network(3, 12, 4, 4).unwrap()
            });
            assert_eq!(net.session_count(), 4);
        }
        assert_eq!(builds, 1, "topology built exactly once");
        // Stats untouched by topology traffic.
        assert_eq!(c.stats(), CacheStats::default());
    }

    #[test]
    fn scenario_component_keys_disjoint_entries() {
        // Two scenarios sharing a cache must never see each other's points
        // unless their solve-relevant identity digests agree.
        let mut c = SolveCache::new();
        let tk = TopologyKey::random(TopologyFamily::FlatTree, 10, 3, 3, 0);
        let ka = SolveKey::new(tk, LinkRateModel::Efficient, 11);
        let kb = SolveKey::new(tk, LinkRateModel::Efficient, 22);
        c.insert_point(ka, dummy_point(0));
        assert!(c.point(&ka).is_some());
        assert!(c.point(&kb).is_none(), "distinct scenario digests collide");
    }

    #[test]
    fn shared_cache_pools_across_handles() {
        let shared = SharedSolveCache::with_capacity(8, 8);
        let handle = shared.clone();
        let k = key(3, LinkRateModel::Sum);
        shared.lock().insert_point(k, dummy_point(3));
        assert_eq!(handle.lock().point(&k).map(|p| p.seed), Some(3));
        assert_eq!(shared.len(), 1);
        assert!(!shared.is_empty());
        assert_eq!(shared.stats().hits, 1);
        shared.clear();
        assert!(handle.is_empty());
    }

    #[test]
    fn stats_merge_and_since() {
        let mut a = CacheStats {
            hits: 3,
            misses: 2,
            evictions: 1,
        };
        let b = CacheStats {
            hits: 1,
            misses: 1,
            evictions: 0,
        };
        a.merge(&b);
        assert_eq!(
            a,
            CacheStats {
                hits: 4,
                misses: 3,
                evictions: 1
            }
        );
        let since = a.since(&b);
        assert_eq!(
            since,
            CacheStats {
                hits: 3,
                misses: 2,
                evictions: 1
            }
        );
    }
}
