//! Fault-tolerant sweep coordination: shard, verify, merge, checkpoint.
//!
//! [`Scenario::sweep_par`] already shards a sweep across threads, but a
//! single killed process loses the whole run and nothing audits a
//! worker's output before it is merged. This module adds the robustness
//! layer: a **coordinator** hands seed-range shards to workers over typed
//! mpsc channels, every delivered shard carries a deterministic FNV-1a
//! content hash the coordinator recomputes before accepting, accepted
//! shards can additionally be **spot-checked** — their head jobs
//! recomputed bitwise by a *different* worker — and completed shards
//! stream to an append-only [checkpoint] so a killed
//! sweep resumes from disk.
//!
//! The determinism contract is what makes all of this cheap: every sweep
//! point is a pure function of its `(model, seed)` job and the scenario
//! spec, so *any* worker can recompute *any* shard at *any* time and
//! produce the same bytes. Failures therefore become recoverable rather
//! than fatal — lost work is reassigned, corrupt work is rejected and
//! recomputed, duplicated work is dropped — and the merged report is
//! **bitwise identical** to [`Scenario::sweep`] no matter what failed:
//!
//! ```text
//! coordinate(faults = none) ≡ coordinate(any FaultPlan)
//!                           ≡ kill-at-every-shard + resume ≡ sweep()
//! ```
//!
//! # Fault model and injection
//!
//! Faults are injected deterministically from a seeded [`FaultPlan`]
//! ([`FaultPlan::from_seed`] draws events from the simulation RNG), one
//! event at most per shard, firing on the shard's **first** assignment:
//!
//! * [`FaultKind::CrashWorker`] — the worker thread exits mid-shard and
//!   never replies; its channel drops, the shard times out and is
//!   reassigned, and the dead worker is detected at the next send.
//! * [`FaultKind::Stall`] — the worker sleeps past the per-shard deadline
//!   and delivers late; the coordinator has already reassigned, and the
//!   late delivery is either accepted (identical bytes) or dropped as a
//!   duplicate.
//! * [`FaultKind::CorruptHash`] — the delivery's content hash lies; the
//!   recomputed hash disagrees, the shard is rejected (never merged) and
//!   retried elsewhere with capped exponential backoff.
//! * [`FaultKind::DuplicateShard`] — the shard is delivered twice; the
//!   second copy is dropped.
//! * [`FaultKind::KillProcess`] — (process fleets) the supervisor
//!   SIGKILLs the worker child mid-shard; the death is observed, the
//!   shard requeued, and the slot respawned with capped backoff. Thread
//!   fleets model it as a clean worker exit.
//! * [`FaultKind::TornFrame`] — the assignment frame is damaged on the
//!   wire; the frame checksum catches it, the worker rejects it, and the
//!   coordinator requeues. Thread fleets deliver the rejection directly.
//!
//! Retries are capped ([`CoordinatorConfig::max_retries`], then
//! [`CoordinatorError::ShardFailed`]); when every worker is lost the
//! coordinator degrades gracefully to computing the remaining shards
//! serially in-process. None of these scheduling decisions can change the
//! merged bytes — only *whether* and *when* a shard's (always identical)
//! points arrive.
//!
//! # Clocks
//!
//! Per-shard deadlines and retry backoff read the monotonic wall clock —
//! the one sanctioned exception to the crate's no-ambient-entropy rule
//! (see the `ambient-entropy` docs in `mlf-lint`): the clock steers
//! **scheduling only** (when to reassign, when to give up waiting). Every
//! accepted shard's bytes are a pure function of the job list, so a slow
//! machine retries more but merges the same report.
//!
//! # Transports and the spill tier
//!
//! The event loop is generic over the crate-private `WorkerTransport`
//! seam: [`TransportKind::Threads`] runs the classic in-process fleet
//! over typed mpsc channels, [`TransportKind::Process`] a **supervised
//! fleet of child worker processes** that self-exec the current binary
//! and speak the framed protocol of [`crate::transport`]. Dead processes
//! are respawned with capped backoff up to
//! [`ProcessConfig::max_respawns`] per slot; an exhausted fleet degrades
//! to the serial fallback like a lost thread fleet. With
//! [`CoordinatorConfig::spill_dir`] set, each worker's solve cache
//! additionally spills evicted points to a crash-safe, self-checksummed
//! on-disk segment and consults it on memory misses. Neither knob can
//! change the merged bytes — both only move *where* the same pure solves
//! run and *whether* they are recomputed or reread.

use crate::cache::SolveCache;
use crate::checkpoint::{
    self, shard_content_hash, CheckpointError, CheckpointMeta, CheckpointWriter, ShardRecord,
    TailPolicy,
};
use crate::hash::Fnv1a;
use crate::spill::SpillStats;
use crate::transport::{TransportCounters, TransportError, TransportPoll, WorkerTransport};
use crate::{LinkRates, NetworkSource, Scenario, SweepGrid, SweepPoint, SweepReport};
use mlf_core::allocator::SolverWorkspace;
use mlf_core::LinkRateModel;
use mlf_sim::SimRng;
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::mpsc;
use std::time::Duration;

// mlf-lint: allow(ambient-entropy, reason = "monotonic deadlines drive retry/reassignment scheduling only; merged bytes are a pure function of the job list (see module docs)")
type Deadline = std::time::Instant;

/// One `(model override, seed)` sweep job — the coordinator speaks the
/// same job language as the serial and parallel executors.
pub(crate) type Job = (Option<LinkRateModel>, u64);

/// The kinds of failure the seeded harness can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The worker thread exits mid-shard without replying.
    CrashWorker,
    /// The worker sleeps past the shard deadline, then delivers late.
    Stall,
    /// The delivery claims a content hash its points do not have.
    CorruptHash,
    /// The delivery arrives twice.
    DuplicateShard,
    /// The worker *process* is SIGKILLed mid-shard by the supervisor
    /// (thread fleets model it as a clean worker exit — either way the
    /// coordinator observes a dead worker).
    KillProcess,
    /// The assignment frame is damaged on the wire; the frame checksum
    /// catches it and the worker rejects instead of computing.
    TornFrame,
}

/// One injected fault: `kind` fires when `worker` receives `shard` on the
/// shard's first assignment (retries run clean, so every plan converges).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// What goes wrong.
    pub kind: FaultKind,
    /// The worker the fault is armed on.
    pub worker: usize,
    /// The shard whose first assignment triggers it.
    pub shard: u64,
}

/// A deterministic fault schedule. The same plan against the same sweep
/// produces the same failures — which is what lets CI assert that *every*
/// plan merges the same bytes as the fault-free run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty plan: no injected faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// An explicit plan (tests targeting one fault class).
    pub fn from_events(events: Vec<FaultEvent>) -> Self {
        FaultPlan { events }
    }

    /// Draw a plan from the simulation RNG: each shard has a 40% chance
    /// of carrying one fault of a uniformly chosen kind, armed on a
    /// uniformly chosen worker. At most one event per shard, so a capped
    /// retry budget always converges.
    pub fn from_seed(seed: u64, workers: usize, shards: u64) -> Self {
        let mut rng = SimRng::seed_from_u64(seed);
        let workers = workers.max(1) as u64;
        let mut events = Vec::new();
        for shard in 0..shards {
            if !rng.bernoulli(0.4) {
                continue;
            }
            let kind = match rng.below(4) {
                0 => FaultKind::CrashWorker,
                1 => FaultKind::Stall,
                2 => FaultKind::CorruptHash,
                _ => FaultKind::DuplicateShard,
            };
            let worker = rng.below(workers) as usize;
            events.push(FaultEvent {
                kind,
                worker,
                shard,
            });
        }
        FaultPlan { events }
    }

    /// Like [`FaultPlan::from_seed`], drawing from the full fault
    /// alphabet including the process-transport kinds
    /// ([`FaultKind::KillProcess`], [`FaultKind::TornFrame`]) — the plan
    /// the process-chaos differentials run at every fleet size.
    pub fn from_seed_process(seed: u64, workers: usize, shards: u64) -> Self {
        let mut rng = SimRng::seed_from_u64(seed);
        let workers = workers.max(1) as u64;
        let mut events = Vec::new();
        for shard in 0..shards {
            if !rng.bernoulli(0.4) {
                continue;
            }
            let kind = match rng.below(6) {
                0 => FaultKind::CrashWorker,
                1 => FaultKind::Stall,
                2 => FaultKind::CorruptHash,
                3 => FaultKind::DuplicateShard,
                4 => FaultKind::KillProcess,
                _ => FaultKind::TornFrame,
            };
            let worker = rng.below(workers) as usize;
            events.push(FaultEvent {
                kind,
                worker,
                shard,
            });
        }
        FaultPlan { events }
    }

    /// The scheduled events.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    pub(crate) fn fires(&self, worker: usize, shard: u64, attempt: u32) -> Option<FaultKind> {
        if attempt != 0 {
            return None;
        }
        self.events
            .iter()
            .find(|e| e.worker == worker && e.shard == shard)
            .map(|e| e.kind)
    }
}

/// Which worker fleet a coordinated sweep runs on.
#[derive(Debug, Clone, Default)]
pub enum TransportKind {
    /// In-process worker threads over typed mpsc channels.
    #[default]
    Threads,
    /// Supervised child worker processes over the framed stdin/stdout
    /// protocol of [`crate::transport`].
    Process(ProcessConfig),
}

/// Knobs of the process-fleet supervisor.
#[derive(Debug, Clone)]
pub struct ProcessConfig {
    /// The worker binary (`None` = re-exec the current executable, which
    /// must call [`crate::transport::maybe_run_process_worker`] first
    /// thing in `main`).
    pub program: Option<PathBuf>,
    /// Respawn budget per worker slot; a slot that exhausts it stays
    /// down (and a fully exhausted fleet falls back to the serial path).
    pub max_respawns: u32,
    /// First respawn backoff; doubles per respawn.
    pub respawn_backoff: Duration,
    /// Respawn backoff ceiling.
    pub respawn_backoff_cap: Duration,
    /// A worker silent for this long while holding an assignment is
    /// declared dead, killed, and respawned. Generous by default — the
    /// per-shard [`CoordinatorConfig::shard_timeout`] already requeues
    /// slow shards; the heartbeat only reclaims truly wedged processes.
    pub heartbeat: Duration,
}

impl Default for ProcessConfig {
    fn default() -> Self {
        ProcessConfig {
            program: None,
            max_respawns: 4,
            respawn_backoff: Duration::from_millis(10),
            respawn_backoff_cap: Duration::from_millis(200),
            heartbeat: Duration::from_secs(30),
        }
    }
}

/// Knobs of one coordinated sweep.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Worker threads (`0` = use `std::thread::available_parallelism`).
    pub workers: usize,
    /// Jobs per shard (clamped to at least 1).
    pub shard_size: usize,
    /// Head jobs of every accepted shard recomputed bitwise by a second
    /// worker before the shard is merged (`0` disables spot checks).
    pub spot_check: usize,
    /// How long one shard may stay assigned before it is reassigned.
    pub shard_timeout: Duration,
    /// Retry budget per shard (timeouts and hash rejects both count).
    pub max_retries: u32,
    /// First retry backoff; doubles per retry.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Stream accepted shards to this append-only checkpoint file and
    /// resume from it when it already exists.
    pub checkpoint: Option<PathBuf>,
    /// The injected fault schedule (empty in production).
    pub fault_plan: FaultPlan,
    /// Stop with [`CoordinatorError::Interrupted`] after accepting this
    /// many *new* shards — the simulated-kill hook the resume tests drive.
    pub max_new_shards: Option<u64>,
    /// Which fleet to run on (threads or supervised processes).
    pub transport: TransportKind,
    /// Enable the disk spill tier: each worker's solve cache spills
    /// evicted points to `<dir>/worker-<id>.spill` (the serial fallback
    /// uses `serial.spill`) and consults the segment on memory misses.
    /// The directory is created if missing; an unopenable or corrupt
    /// segment disables/starts a fresh tier, never fails the sweep.
    pub spill_dir: Option<PathBuf>,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            workers: 2,
            shard_size: 8,
            spot_check: 2,
            shard_timeout: Duration::from_secs(2),
            max_retries: 4,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(200),
            checkpoint: None,
            fault_plan: FaultPlan::none(),
            max_new_shards: None,
            transport: TransportKind::Threads,
            spill_dir: None,
        }
    }
}

/// Why a coordinated sweep stopped without a merged report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoordinatorError {
    /// One shard exhausted its retry budget.
    ShardFailed {
        /// The shard index.
        shard: u64,
        /// Attempts consumed.
        attempts: u32,
    },
    /// [`CoordinatorConfig::max_new_shards`] was reached with work left;
    /// the checkpoint (when configured) holds everything accepted so far.
    Interrupted {
        /// Newly accepted shards this run.
        accepted: u64,
    },
    /// The checkpoint file could not be written, read, or trusted.
    Checkpoint(CheckpointError),
    /// The process fleet could not be launched (spawning the initial
    /// children failed at the OS level). Wire-level damage *after*
    /// launch never surfaces here — it is retried, respawned around, or
    /// absorbed by the serial fallback.
    Transport(TransportError),
    /// The scenario cannot be shipped to worker processes (fixed
    /// network, explicit link-rate config, or unregistered allocator);
    /// run it on [`TransportKind::Threads`] instead.
    UnsupportedScenario {
        /// Why the scenario spec could not be built.
        reason: String,
    },
}

impl std::fmt::Display for CoordinatorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoordinatorError::ShardFailed { shard, attempts } => {
                write!(f, "shard {shard} failed after {attempts} attempts")
            }
            CoordinatorError::Interrupted { accepted } => {
                write!(f, "interrupted after accepting {accepted} new shards")
            }
            CoordinatorError::Checkpoint(e) => write!(f, "{e}"),
            CoordinatorError::Transport(e) => write!(f, "process fleet failed to launch: {e}"),
            CoordinatorError::UnsupportedScenario { reason } => {
                write!(f, "scenario cannot run on the process transport: {reason}")
            }
        }
    }
}

impl std::error::Error for CoordinatorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoordinatorError::Checkpoint(e) => Some(e),
            CoordinatorError::Transport(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CheckpointError> for CoordinatorError {
    fn from(e: CheckpointError) -> Self {
        CoordinatorError::Checkpoint(e)
    }
}

impl From<TransportError> for CoordinatorError {
    fn from(e: TransportError) -> Self {
        CoordinatorError::Transport(e)
    }
}

/// Scheduling telemetry of one coordinated run. Everything here depends
/// on timing, fault injection, and machine load — which is exactly why it
/// lives *outside* [`SweepReport`] equality: two runs with wildly
/// different stats still merge identical bytes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoordinatorStats {
    /// Total shards in the sweep.
    pub shards: u64,
    /// Shards restored from the checkpoint instead of recomputed.
    pub shards_from_checkpoint: u64,
    /// Shard reassignments (timeouts, hash rejects, spot mismatches).
    pub retries: u64,
    /// Deadline expiries observed.
    pub timeouts: u64,
    /// Deliveries rejected because their content hash did not verify.
    pub hash_rejects: u64,
    /// Deliveries dropped because the shard was already settled.
    pub duplicates_dropped: u64,
    /// Workers found dead at dispatch (send failed).
    pub workers_lost: u64,
    /// Spot checks that compared bitwise equal.
    pub spot_checks_passed: u64,
    /// Shards accepted without their spot check (no second worker left,
    /// spot retries exhausted, or serial fallback).
    pub spot_checks_skipped: u64,
    /// Whether the run finished by computing remaining shards serially.
    pub serial_fallback: bool,
    /// Worker processes respawned by the supervisor.
    pub respawns: u64,
    /// Assignment frames rejected by workers as damaged in flight.
    pub frames_rejected: u64,
    /// Points the workers' spill tiers served from disk.
    pub spill_hits: u64,
    /// Spill-tier lookups that found nothing on disk.
    pub spill_misses: u64,
    /// Corrupt spill segments or records detected, skipped, and never
    /// merged.
    pub spill_corrupt_segments: u64,
}

impl std::fmt::Display for CoordinatorStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "shards: {} total, {} from checkpoint",
            self.shards, self.shards_from_checkpoint
        )?;
        writeln!(
            f,
            "recovery: {} retries, {} timeouts, {} hash rejects, {} duplicates dropped",
            self.retries, self.timeouts, self.hash_rejects, self.duplicates_dropped
        )?;
        writeln!(
            f,
            "fleet: {} workers lost, {} respawns, {} frames rejected, serial fallback: {}",
            self.workers_lost,
            self.respawns,
            self.frames_rejected,
            if self.serial_fallback { "yes" } else { "no" }
        )?;
        writeln!(
            f,
            "audit: {} spot checks passed, {} skipped",
            self.spot_checks_passed, self.spot_checks_skipped
        )?;
        write!(
            f,
            "spill: {} hits, {} misses, {} corrupt segments",
            self.spill_hits, self.spill_misses, self.spill_corrupt_segments
        )
    }
}

/// A merged coordinated sweep: the (bitwise canonical) report plus the
/// scheduling telemetry of how it got there.
#[derive(Debug, Clone)]
pub struct CoordinatorReport {
    /// The merged sweep, byte-identical to [`Scenario::sweep`] over the
    /// same jobs.
    pub report: SweepReport,
    /// Scheduling telemetry (excluded from any equality the differentials
    /// assert).
    pub stats: CoordinatorStats,
}

// ---------------------------------------------------------------------------
// Wire types
// ---------------------------------------------------------------------------

/// What a worker was asked to compute: a real shard, or the spot-check
/// audit of one. Shared with the transport frame codec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TaskId {
    Shard(u64),
    Spot(u64),
}

/// One unit of dispatched work. Shared with the transport frame codec.
#[derive(Debug, Clone)]
pub(crate) struct Assignment {
    pub(crate) task: TaskId,
    pub(crate) attempt: u32,
    pub(crate) shard: u64,
    pub(crate) start: u64,
    pub(crate) jobs: Vec<Job>,
}

#[derive(Debug)]
enum ToWorker {
    Assign(Assignment),
    Shutdown,
}

/// One delivered computation. Shared with the transport frame codec;
/// `spill` carries the worker's spill-tier activity since its previous
/// report (telemetry only — never part of any verified bytes).
#[derive(Debug, Clone)]
pub(crate) struct WorkerReport {
    pub(crate) worker: usize,
    pub(crate) task: TaskId,
    pub(crate) attempt: u32,
    pub(crate) points: Vec<SweepPoint>,
    pub(crate) hash: u64,
    pub(crate) spill: SpillStats,
}

struct ShardSpec {
    start: u64,
    jobs: Vec<Job>,
}

enum ShardState {
    /// Waiting for a worker (`ready_at` holds the retry backoff).
    Queued {
        ready_at: Option<Deadline>,
    },
    /// Assigned; reassigned if not delivered by `deadline`.
    Running {
        deadline: Deadline,
    },
    /// Hash-verified points waiting for a spot-check slot.
    Held {
        points: Vec<SweepPoint>,
        computed_by: usize,
        spot_attempt: u32,
        ready_at: Option<Deadline>,
    },
    /// Spot check in flight on a second worker.
    SpotRunning {
        points: Vec<SweepPoint>,
        computed_by: usize,
        spot_attempt: u32,
        deadline: Deadline,
    },
    Done,
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

fn worker_loop(
    scenario: &Scenario,
    id: usize,
    rx: mpsc::Receiver<ToWorker>,
    tx: mpsc::Sender<WorkerReport>,
    plan: &FaultPlan,
    stall: Duration,
    spill: Option<PathBuf>,
) {
    let mut ws = SolverWorkspace::new();
    let mut cache: Option<SolveCache> = scenario.worker_cache_with_spill(spill.as_deref());
    let mut last_spill = SpillStats::default();
    while let Ok(msg) = rx.recv() {
        let a = match msg {
            ToWorker::Shutdown => return,
            ToWorker::Assign(a) => a,
        };
        // Faults target real shard work only; spot checks run clean (they
        // are the audit, not the subject).
        let fault = match a.task {
            TaskId::Shard(_) => plan.fires(id, a.shard, a.attempt),
            TaskId::Spot(_) => None,
        };
        if matches!(fault, Some(FaultKind::CrashWorker | FaultKind::KillProcess)) {
            // Crash: exit without replying. Dropping `rx` is what the
            // coordinator eventually observes as a dead channel. (A
            // thread cannot be SIGKILLed, so KillProcess degrades to the
            // same observable outcome.)
            return;
        }
        if matches!(fault, Some(FaultKind::Stall)) {
            std::thread::sleep(stall);
        }
        let points: Vec<SweepPoint> = a
            .jobs
            .iter()
            .map(|&(model, seed)| scenario.sweep_point_with(seed, model, &mut ws, cache.as_mut()))
            .collect();
        let mut hash = shard_content_hash(a.shard, a.start, &points);
        if matches!(fault, Some(FaultKind::CorruptHash)) {
            hash ^= 0x5eed_bad0_dead_beef;
        }
        let now_spill = cache
            .as_ref()
            .and_then(|c| c.spill_stats())
            .unwrap_or_default();
        let spill_delta = now_spill.since(&last_spill);
        last_spill = now_spill;
        let report = WorkerReport {
            worker: id,
            task: a.task,
            attempt: a.attempt,
            points,
            hash,
            spill: spill_delta,
        };
        let duplicate = matches!(fault, Some(FaultKind::DuplicateShard));
        if duplicate && tx.send(report.clone()).is_err() {
            return;
        }
        if tx.send(report).is_err() {
            return;
        }
    }
}

// ---------------------------------------------------------------------------
// Thread transport
// ---------------------------------------------------------------------------

struct ThreadSlot {
    tx: mpsc::Sender<ToWorker>,
    alive: bool,
}

/// The in-process fleet: one worker thread per slot over typed mpsc
/// channels — the original coordinator transport, now behind
/// [`WorkerTransport`] so the event loop cannot tell it from a process
/// fleet.
struct ThreadTransport<'p> {
    slots: Vec<ThreadSlot>,
    rrx: mpsc::Receiver<WorkerReport>,
    plan: &'p FaultPlan,
    /// Synthetic events (torn-frame rejections) delivered ahead of the
    /// report channel.
    pending: VecDeque<TransportPoll>,
    counters: TransportCounters,
}

impl WorkerTransport for ThreadTransport<'_> {
    fn worker_count(&self) -> usize {
        self.slots.len()
    }

    fn usable(&self, worker: usize) -> bool {
        self.slots[worker].alive
    }

    fn try_send(&mut self, worker: usize, assignment: &Assignment) -> bool {
        if !self.slots[worker].alive {
            return false;
        }
        // A torn frame never reaches the worker: model the damage as an
        // immediate rejection — exactly what a process worker sends back
        // after a checksum mismatch.
        if matches!(assignment.task, TaskId::Shard(_))
            && self
                .plan
                .fires(worker, assignment.shard, assignment.attempt)
                == Some(FaultKind::TornFrame)
        {
            self.pending.push_back(TransportPoll::Rejected { worker });
            return true;
        }
        if self.slots[worker]
            .tx
            .send(ToWorker::Assign(assignment.clone()))
            .is_ok()
        {
            true
        } else {
            // The channel is dead: the worker crashed some time ago.
            self.slots[worker].alive = false;
            self.counters.workers_lost += 1;
            false
        }
    }

    fn recv_timeout(&mut self, wait: Duration) -> TransportPoll {
        if let Some(ev) = self.pending.pop_front() {
            return ev;
        }
        match self.rrx.recv_timeout(wait) {
            Ok(rep) => TransportPoll::Report(rep),
            Err(mpsc::RecvTimeoutError::Timeout) => TransportPoll::Timeout,
            Err(mpsc::RecvTimeoutError::Disconnected) => TransportPoll::AllDown,
        }
    }

    fn shutdown(&mut self) {
        for s in &self.slots {
            let _ = s.tx.send(ToWorker::Shutdown);
        }
    }

    fn counters(&self) -> TransportCounters {
        self.counters
    }
}

// ---------------------------------------------------------------------------
// Coordinator side
// ---------------------------------------------------------------------------

/// The identity of one coordinated sweep: everything that determines the
/// merged bytes — scenario spec, allocator identity, audit switch, and the
/// exact job list. Binds checkpoints to their sweep so a file can never
/// resume a different experiment.
fn sweep_identity(scenario: &Scenario, jobs: &[Job]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(scenario.label.as_bytes());
    h.write(scenario.allocator.name().as_bytes());
    let sig = scenario
        .allocator
        .cache_signature()
        .unwrap_or_else(|| "<opaque>".to_string());
    h.write(sig.as_bytes());
    h.write_u64(u64::from(scenario.check_properties));
    match &scenario.source {
        NetworkSource::Fixed(net) => {
            h.write(b"fixed");
            h.write_u64(net.session_count() as u64);
        }
        NetworkSource::Random {
            family,
            nodes,
            sessions,
            max_receivers,
        } => {
            h.write(b"random");
            h.write(family.label().as_bytes());
            h.write_u64(*nodes as u64);
            h.write_u64(*sessions as u64);
            h.write_u64(*max_receivers as u64);
        }
    }
    match &scenario.link_rates {
        LinkRates::Efficient => h.write(b"eff"),
        LinkRates::Uniform(m) => {
            h.write(b"uniform");
            let (tag, bits) = checkpoint::model_code(Some(*m));
            h.write(&[tag]);
            h.write_u64(bits);
        }
        LinkRates::Explicit(cfg) => {
            h.write(b"explicit");
            for i in 0..cfg.len() {
                let (tag, bits) = checkpoint::model_code(Some(*cfg.model(i)));
                h.write(&[tag]);
                h.write_u64(bits);
            }
        }
    }
    h.write_u64(jobs.len() as u64);
    for &(model, seed) in jobs {
        let (tag, bits) = checkpoint::model_code(model);
        h.write(&[tag]);
        h.write_u64(bits);
        h.write_u64(seed);
    }
    h.finish()
}

fn backoff(cfg: &CoordinatorConfig, attempt: u32) -> Duration {
    let shift = attempt.saturating_sub(1).min(16);
    cfg.backoff_base
        .saturating_mul(1u32 << shift)
        .min(cfg.backoff_cap)
}

/// Accept one verified shard: checkpoint it, mark it done.
#[allow(clippy::too_many_arguments)]
fn accept_shard(
    i: usize,
    points: Vec<SweepPoint>,
    shards: &[ShardSpec],
    writer: &mut Option<CheckpointWriter>,
    done: &mut [Option<Vec<SweepPoint>>],
    state: &mut [ShardState],
    remaining: &mut usize,
    accepted_new: &mut u64,
) -> Result<(), CoordinatorError> {
    if let Some(w) = writer.as_mut() {
        let start = shards[i].start;
        let hash = shard_content_hash(i as u64, start, &points);
        w.append_shard(&ShardRecord {
            shard: i as u64,
            start,
            points: points.clone(),
            hash,
        })?;
    }
    done[i] = Some(points);
    state[i] = ShardState::Done;
    *remaining -= 1;
    *accepted_new += 1;
    Ok(())
}

/// Whether the simulated-kill cap fires now.
fn interrupted(cfg: &CoordinatorConfig, accepted_new: u64, remaining: usize) -> bool {
    matches!(cfg.max_new_shards, Some(cap) if accepted_new >= cap && remaining > 0)
}

impl Scenario {
    /// [`Scenario::sweep`] through the fault-tolerant coordinator: shards
    /// the seeds across worker threads, hash-verifies and optionally
    /// spot-checks every shard, checkpoints accepted shards, and merges in
    /// canonical seed order. The merged [`SweepReport`] is **bitwise
    /// identical** to the serial sweep under any [`FaultPlan`] and across
    /// any kill/resume sequence. See the [module docs](crate::coordinator).
    pub fn coordinate<I: IntoIterator<Item = u64>>(
        &self,
        seeds: I,
        cfg: &CoordinatorConfig,
    ) -> Result<CoordinatorReport, CoordinatorError> {
        let jobs: Vec<Job> = seeds.into_iter().map(|s| (None, s)).collect();
        self.coordinate_jobs(jobs, cfg)
    }

    /// [`Scenario::sweep_grid`] through the coordinator (models-major job
    /// order, exactly like the serial and parallel grid executors).
    pub fn coordinate_grid(
        &self,
        grid: &SweepGrid,
        cfg: &CoordinatorConfig,
    ) -> Result<CoordinatorReport, CoordinatorError> {
        self.check_grid(grid);
        self.coordinate_jobs(Self::grid_jobs(grid), cfg)
    }

    fn coordinate_jobs(
        &self,
        jobs: Vec<Job>,
        cfg: &CoordinatorConfig,
    ) -> Result<CoordinatorReport, CoordinatorError> {
        let shard_size = cfg.shard_size.max(1);
        let mut shards: Vec<ShardSpec> = Vec::new();
        for (idx, chunk) in jobs.chunks(shard_size).enumerate() {
            shards.push(ShardSpec {
                start: (idx * shard_size) as u64,
                jobs: chunk.to_vec(),
            });
        }
        let mut stats = CoordinatorStats {
            shards: shards.len() as u64,
            ..CoordinatorStats::default()
        };
        let meta = CheckpointMeta {
            sweep: sweep_identity(self, &jobs),
            shards: shards.len() as u64,
            shard_size: shard_size as u64,
        };

        let mut done: Vec<Option<Vec<SweepPoint>>> = (0..shards.len()).map(|_| None).collect();
        let mut writer: Option<CheckpointWriter> = None;
        if let Some(path) = &cfg.checkpoint {
            if path.exists() {
                let loaded = checkpoint::load_checkpoint(path, &meta, TailPolicy::Recover)?;
                for rec in loaded.shards.iter() {
                    let spec = &shards[rec.shard as usize];
                    if rec.start != spec.start || rec.points.len() != spec.jobs.len() {
                        return Err(CheckpointError::Corrupt {
                            line: 0,
                            reason: format!(
                                "shard {} geometry disagrees with the sweep \
                                 (start {} len {}, expected start {} len {})",
                                rec.shard,
                                rec.start,
                                rec.points.len(),
                                spec.start,
                                spec.jobs.len()
                            ),
                        }
                        .into());
                    }
                    if done[rec.shard as usize].is_none() {
                        stats.shards_from_checkpoint += 1;
                    }
                    done[rec.shard as usize] = Some(rec.points.clone());
                }
                writer = Some(CheckpointWriter::resume(path, &meta, &loaded)?);
            } else {
                writer = Some(CheckpointWriter::create(path, &meta)?);
            }
        }

        let mut remaining = done.iter().filter(|d| d.is_none()).count();
        let mut accepted_new = 0u64;
        if remaining > 0 && interrupted(cfg, 0, remaining) {
            return Err(CoordinatorError::Interrupted { accepted: 0 });
        }
        if remaining > 0 {
            self.run_workers(
                cfg,
                &shards,
                &mut done,
                &mut writer,
                &mut remaining,
                &mut accepted_new,
                &mut stats,
            )?;
        }

        let mut points = Vec::with_capacity(jobs.len());
        // Every shard is `Some` here: run_workers only returns Ok once
        // `remaining == 0`.
        for p in done.into_iter().flatten() {
            points.extend(p);
        }
        Ok(CoordinatorReport {
            report: SweepReport {
                label: self.label.clone(),
                points,
                cache: Default::default(),
            },
            stats,
        })
    }

    /// Launch the configured fleet and drive the event loop over it.
    #[allow(clippy::too_many_arguments)]
    fn run_workers(
        &self,
        cfg: &CoordinatorConfig,
        shards: &[ShardSpec],
        done: &mut [Option<Vec<SweepPoint>>],
        writer: &mut Option<CheckpointWriter>,
        remaining: &mut usize,
        accepted_new: &mut u64,
        stats: &mut CoordinatorStats,
    ) -> Result<(), CoordinatorError> {
        let workers = if cfg.workers == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            cfg.workers
        };
        let plan = &cfg.fault_plan;
        // Stalls must overshoot the deadline, or they would be ordinary
        // slow deliveries rather than timeouts.
        let stall = cfg
            .shard_timeout
            .saturating_mul(2)
            .saturating_add(Duration::from_millis(20));
        let mut state: Vec<ShardState> = done
            .iter()
            .map(|d| {
                if d.is_some() {
                    ShardState::Done
                } else {
                    ShardState::Queued { ready_at: None }
                }
            })
            .collect();
        let mut attempts: Vec<u32> = vec![0; shards.len()];
        if let Some(dir) = &cfg.spill_dir {
            // Best-effort: the spill tier is an optimization, never a
            // reason to fail a sweep.
            let _ = std::fs::create_dir_all(dir);
        }
        let worker_spill = |id: usize| {
            cfg.spill_dir
                .as_ref()
                .map(|d| d.join(format!("worker-{id}.spill")))
        };

        match &cfg.transport {
            TransportKind::Threads => std::thread::scope(|scope| {
                let (rtx, rrx) = mpsc::channel::<WorkerReport>();
                let slots: Vec<ThreadSlot> = (0..workers)
                    .map(|id| {
                        let (tx, rx) = mpsc::channel::<ToWorker>();
                        let rtx = rtx.clone();
                        let spill = worker_spill(id);
                        scope.spawn(move || worker_loop(self, id, rx, rtx, plan, stall, spill));
                        ThreadSlot { tx, alive: true }
                    })
                    .collect();
                drop(rtx);
                let mut transport = ThreadTransport {
                    slots,
                    rrx,
                    plan,
                    pending: VecDeque::new(),
                    counters: TransportCounters::default(),
                };
                self.drive(
                    &mut transport,
                    cfg,
                    shards,
                    &mut state,
                    &mut attempts,
                    done,
                    writer,
                    remaining,
                    accepted_new,
                    stats,
                )
            }),
            TransportKind::Process(pc) => {
                let spec = self
                    .process_spec()
                    .map_err(|reason| CoordinatorError::UnsupportedScenario { reason })?;
                let mut transport = crate::supervisor::ProcessTransport::launch(
                    spec,
                    workers,
                    pc.clone(),
                    plan.clone(),
                    stall,
                    cfg.spill_dir.clone(),
                )?;
                self.drive(
                    &mut transport,
                    cfg,
                    shards,
                    &mut state,
                    &mut attempts,
                    done,
                    writer,
                    remaining,
                    accepted_new,
                    stats,
                )
            }
        }
    }

    /// Drive one launched fleet to completion, then shut it down
    /// (whatever the outcome — process children are reaped even on
    /// error) and fold its counters into the stats.
    #[allow(clippy::too_many_arguments)]
    fn drive<T: WorkerTransport>(
        &self,
        transport: &mut T,
        cfg: &CoordinatorConfig,
        shards: &[ShardSpec],
        state: &mut [ShardState],
        attempts: &mut [u32],
        done: &mut [Option<Vec<SweepPoint>>],
        writer: &mut Option<CheckpointWriter>,
        remaining: &mut usize,
        accepted_new: &mut u64,
        stats: &mut CoordinatorStats,
    ) -> Result<(), CoordinatorError> {
        let mut current: Vec<Option<(TaskId, u32)>> = vec![None; transport.worker_count()];
        let result = self.drive_loop(
            transport,
            cfg,
            shards,
            state,
            attempts,
            &mut current,
            done,
            writer,
            remaining,
            accepted_new,
            stats,
        );
        transport.shutdown();
        let c = transport.counters();
        stats.workers_lost += c.workers_lost;
        stats.respawns += c.respawns;
        result
    }

    /// The transport-generic event loop: dispatch, verify, retry, merge.
    /// Scheduling decisions are identical for thread and process fleets —
    /// which is why the two transports merge identical bytes.
    #[allow(clippy::too_many_arguments)]
    fn drive_loop<T: WorkerTransport>(
        &self,
        transport: &mut T,
        cfg: &CoordinatorConfig,
        shards: &[ShardSpec],
        state: &mut [ShardState],
        attempts: &mut [u32],
        current: &mut [Option<(TaskId, u32)>],
        done: &mut [Option<Vec<SweepPoint>>],
        writer: &mut Option<CheckpointWriter>,
        remaining: &mut usize,
        accepted_new: &mut u64,
        stats: &mut CoordinatorStats,
    ) -> Result<(), CoordinatorError> {
        let mut stuck_probes = 0u32;

        loop {
            // --- dispatch ready work to idle live workers ------------
            for i in 0..state.len() {
                let now = Deadline::now();
                match &state[i] {
                    ShardState::Queued { ready_at } if ready_at.map_or(true, |t| t <= now) => {
                        let spec = &shards[i];
                        let assignment = Assignment {
                            task: TaskId::Shard(i as u64),
                            attempt: attempts[i],
                            shard: i as u64,
                            start: spec.start,
                            jobs: spec.jobs.clone(),
                        };
                        if dispatch_to(transport, current, None, &assignment).is_some() {
                            state[i] = ShardState::Running {
                                deadline: now + cfg.shard_timeout,
                            };
                            stuck_probes = 0;
                        }
                    }
                    ShardState::Held { ready_at, .. } if ready_at.map_or(true, |t| t <= now) => {
                        let (points, computed_by, spot_attempt) = match std::mem::replace(
                            &mut state[i],
                            ShardState::Queued { ready_at: None },
                        ) {
                            ShardState::Held {
                                points,
                                computed_by,
                                spot_attempt,
                                ..
                            } => (points, computed_by, spot_attempt),
                            // Unreachable: we matched Held above.
                            other => {
                                state[i] = other;
                                continue;
                            }
                        };
                        let second_exists = (0..transport.worker_count())
                            .any(|w| w != computed_by && transport.usable(w));
                        if !second_exists {
                            // No independent worker left to audit with:
                            // accept on the (already verified) content
                            // hash alone.
                            stats.spot_checks_skipped += 1;
                            accept_shard(
                                i,
                                points,
                                shards,
                                writer,
                                done,
                                state,
                                remaining,
                                accepted_new,
                            )?;
                            if interrupted(cfg, *accepted_new, *remaining) {
                                break;
                            }
                            continue;
                        }
                        let spec = &shards[i];
                        let spot_len = cfg.spot_check.min(spec.jobs.len());
                        let assignment = Assignment {
                            task: TaskId::Spot(i as u64),
                            attempt: spot_attempt,
                            shard: i as u64,
                            start: spec.start,
                            jobs: spec.jobs[..spot_len].to_vec(),
                        };
                        if dispatch_to(transport, current, Some(computed_by), &assignment).is_some()
                        {
                            state[i] = ShardState::SpotRunning {
                                points,
                                computed_by,
                                spot_attempt,
                                deadline: now + cfg.shard_timeout,
                            };
                            stuck_probes = 0;
                        } else {
                            state[i] = ShardState::Held {
                                points,
                                computed_by,
                                spot_attempt,
                                ready_at: None,
                            };
                        }
                    }
                    _ => {}
                }
            }
            if *remaining == 0 {
                return Ok(());
            }
            if interrupted(cfg, *accepted_new, *remaining) {
                return Err(CoordinatorError::Interrupted {
                    accepted: *accepted_new,
                });
            }
            if !(0..transport.worker_count()).any(|w| transport.usable(w)) {
                stats.serial_fallback = true;
                return self.serial_remainder(
                    cfg,
                    shards,
                    state,
                    done,
                    writer,
                    remaining,
                    accepted_new,
                    stats,
                );
            }

            // --- wait for the next delivery or deadline --------------
            let now = Deadline::now();
            let mut next: Option<Deadline> = None;
            let mut in_flight = false;
            for s in state.iter() {
                let t = match s {
                    ShardState::Running { deadline } => {
                        in_flight = true;
                        Some(*deadline)
                    }
                    ShardState::SpotRunning { deadline, .. } => {
                        in_flight = true;
                        Some(*deadline)
                    }
                    ShardState::Queued { ready_at } => *ready_at,
                    ShardState::Held { ready_at, .. } => *ready_at,
                    ShardState::Done => None,
                };
                if let Some(t) = t {
                    next = Some(next.map_or(t, |n: Deadline| n.min(t)));
                }
            }
            let wait = match next {
                Some(t) => t.saturating_duration_since(now),
                // Nothing scheduled at all: either every live worker is
                // busy (possibly crashed without detection) or work is
                // waiting on a worker. Probe in timeout-sized windows.
                None => cfg.shard_timeout,
            };
            match transport.recv_timeout(wait.max(Duration::from_millis(1))) {
                TransportPoll::Report(rep) => {
                    stuck_probes = 0;
                    self.handle_report(
                        rep,
                        cfg,
                        shards,
                        current,
                        state,
                        attempts,
                        done,
                        writer,
                        remaining,
                        accepted_new,
                        stats,
                    )?;
                }
                TransportPoll::Rejected { worker } => {
                    // A damaged assignment frame: the worker never saw
                    // the work. Requeue it like a lost worker's.
                    stuck_probes = 0;
                    stats.frames_rejected += 1;
                    requeue_lost(
                        cfg,
                        worker,
                        current,
                        shards,
                        state,
                        attempts,
                        done,
                        writer,
                        remaining,
                        accepted_new,
                        stats,
                    )?;
                }
                TransportPoll::Down { worker } => {
                    stuck_probes = 0;
                    requeue_lost(
                        cfg,
                        worker,
                        current,
                        shards,
                        state,
                        attempts,
                        done,
                        writer,
                        remaining,
                        accepted_new,
                        stats,
                    )?;
                }
                TransportPoll::Timeout => {
                    let now = Deadline::now();
                    let mut expired_any = false;
                    for i in 0..state.len() {
                        match &state[i] {
                            ShardState::Running { deadline } if *deadline <= now => {
                                expired_any = true;
                                stats.timeouts += 1;
                                stats.retries += 1;
                                attempts[i] += 1;
                                if attempts[i] > cfg.max_retries {
                                    return Err(CoordinatorError::ShardFailed {
                                        shard: i as u64,
                                        attempts: attempts[i],
                                    });
                                }
                                state[i] = ShardState::Queued {
                                    ready_at: Some(now + backoff(cfg, attempts[i])),
                                };
                            }
                            ShardState::SpotRunning { deadline, .. } if *deadline <= now => {
                                expired_any = true;
                                stats.timeouts += 1;
                                let (points, computed_by, spot_attempt) = match std::mem::replace(
                                    &mut state[i],
                                    ShardState::Queued { ready_at: None },
                                ) {
                                    ShardState::SpotRunning {
                                        points,
                                        computed_by,
                                        spot_attempt,
                                        ..
                                    } => (points, computed_by, spot_attempt + 1),
                                    other => {
                                        state[i] = other;
                                        continue;
                                    }
                                };
                                if spot_attempt > cfg.max_retries {
                                    // The content hash already verified;
                                    // losing the audit repeatedly must
                                    // not fail the sweep.
                                    stats.spot_checks_skipped += 1;
                                    accept_shard(
                                        i,
                                        points,
                                        shards,
                                        writer,
                                        done,
                                        state,
                                        remaining,
                                        accepted_new,
                                    )?;
                                } else {
                                    state[i] = ShardState::Held {
                                        points,
                                        computed_by,
                                        spot_attempt,
                                        ready_at: Some(now + backoff(cfg, spot_attempt)),
                                    };
                                }
                            }
                            _ => {}
                        }
                    }
                    if !expired_any && !in_flight {
                        stuck_probes += 1;
                        if stuck_probes >= 3 {
                            // Live-but-silent workers have had three
                            // full timeout windows; treat the fleet as
                            // lost and finish serially.
                            stats.serial_fallback = true;
                            return self.serial_remainder(
                                cfg,
                                shards,
                                state,
                                done,
                                writer,
                                remaining,
                                accepted_new,
                                stats,
                            );
                        }
                    }
                }
                TransportPoll::AllDown => {
                    // Every worker is permanently gone.
                    stats.serial_fallback = true;
                    return self.serial_remainder(
                        cfg,
                        shards,
                        state,
                        done,
                        writer,
                        remaining,
                        accepted_new,
                        stats,
                    );
                }
            }
        }
    }

    /// Process one delivery: verify, settle, or retry.
    #[allow(clippy::too_many_arguments)]
    fn handle_report(
        &self,
        rep: WorkerReport,
        cfg: &CoordinatorConfig,
        shards: &[ShardSpec],
        current: &mut [Option<(TaskId, u32)>],
        state: &mut [ShardState],
        attempts: &mut [u32],
        done: &mut [Option<Vec<SweepPoint>>],
        writer: &mut Option<CheckpointWriter>,
        remaining: &mut usize,
        accepted_new: &mut u64,
        stats: &mut CoordinatorStats,
    ) -> Result<(), CoordinatorError> {
        if rep.worker < current.len() && current[rep.worker] == Some((rep.task, rep.attempt)) {
            current[rep.worker] = None;
        }
        // Spill telemetry rides every report (a duplicate delivery can
        // double-count — acceptable for counters that steer nothing).
        stats.spill_hits += rep.spill.hits;
        stats.spill_misses += rep.spill.misses;
        stats.spill_corrupt_segments += rep.spill.corrupt_segments;
        match rep.task {
            TaskId::Shard(shard) => {
                let i = shard as usize;
                match &state[i] {
                    ShardState::Done | ShardState::Held { .. } | ShardState::SpotRunning { .. } => {
                        // Already settled (duplicate delivery, or a stale
                        // delivery from a timed-out attempt).
                        stats.duplicates_dropped += 1;
                    }
                    ShardState::Running { .. } | ShardState::Queued { .. } => {
                        // A delivery for an open shard is welcome whichever
                        // attempt produced it — determinism makes every
                        // valid delivery byte-identical — provided it
                        // verifies.
                        let spec = &shards[i];
                        let expected = shard_content_hash(shard, spec.start, &rep.points);
                        if rep.points.len() != spec.jobs.len() || rep.hash != expected {
                            stats.hash_rejects += 1;
                            stats.retries += 1;
                            attempts[i] += 1;
                            if attempts[i] > cfg.max_retries {
                                return Err(CoordinatorError::ShardFailed {
                                    shard,
                                    attempts: attempts[i],
                                });
                            }
                            state[i] = ShardState::Queued {
                                ready_at: Some(Deadline::now() + backoff(cfg, attempts[i])),
                            };
                        } else if cfg.spot_check == 0 {
                            accept_shard(
                                i,
                                rep.points,
                                shards,
                                writer,
                                done,
                                state,
                                remaining,
                                accepted_new,
                            )?;
                        } else {
                            state[i] = ShardState::Held {
                                points: rep.points,
                                computed_by: rep.worker,
                                spot_attempt: 0,
                                ready_at: None,
                            };
                        }
                    }
                }
            }
            TaskId::Spot(shard) => {
                let i = shard as usize;
                let taken = std::mem::replace(&mut state[i], ShardState::Queued { ready_at: None });
                match taken {
                    ShardState::SpotRunning {
                        points,
                        computed_by,
                        spot_attempt,
                        ..
                    } => {
                        let spot_len = cfg.spot_check.min(shards[i].jobs.len());
                        let head_ok = rep.points.len() == spot_len
                            && rep.points.iter().zip(points.iter()).all(|(a, b)| {
                                checkpoint::encode_point(a) == checkpoint::encode_point(b)
                            });
                        if head_ok {
                            stats.spot_checks_passed += 1;
                            accept_shard(
                                i,
                                points,
                                shards,
                                writer,
                                done,
                                state,
                                remaining,
                                accepted_new,
                            )?;
                        } else {
                            // Two workers disagree bitwise: trust neither,
                            // recompute the shard from scratch.
                            let _ = computed_by;
                            let _ = spot_attempt;
                            stats.retries += 1;
                            attempts[i] += 1;
                            if attempts[i] > cfg.max_retries {
                                return Err(CoordinatorError::ShardFailed {
                                    shard,
                                    attempts: attempts[i],
                                });
                            }
                            state[i] = ShardState::Queued {
                                ready_at: Some(Deadline::now() + backoff(cfg, attempts[i])),
                            };
                        }
                    }
                    other => {
                        state[i] = other;
                        stats.duplicates_dropped += 1;
                    }
                }
            }
        }
        Ok(())
    }

    /// Graceful degradation: every worker is lost, so compute the
    /// remaining shards serially in shard order. Bytes are unaffected —
    /// the serial path runs the same pure solve per job.
    #[allow(clippy::too_many_arguments)]
    fn serial_remainder(
        &self,
        cfg: &CoordinatorConfig,
        shards: &[ShardSpec],
        state: &mut [ShardState],
        done: &mut [Option<Vec<SweepPoint>>],
        writer: &mut Option<CheckpointWriter>,
        remaining: &mut usize,
        accepted_new: &mut u64,
        stats: &mut CoordinatorStats,
    ) -> Result<(), CoordinatorError> {
        let mut ws = SolverWorkspace::new();
        let spill = cfg.spill_dir.as_ref().map(|d| d.join("serial.spill"));
        let mut cache: Option<SolveCache> = self.worker_cache_with_spill(spill.as_deref());
        let mut outcome: Result<(), CoordinatorError> = Ok(());
        for i in 0..shards.len() {
            if matches!(state[i], ShardState::Done) {
                continue;
            }
            let taken = std::mem::replace(&mut state[i], ShardState::Queued { ready_at: None });
            let points = match taken {
                // A hash-verified shard awaiting its spot check is kept;
                // the audit is skipped, not the verification.
                ShardState::Held { points, .. } | ShardState::SpotRunning { points, .. } => {
                    stats.spot_checks_skipped += 1;
                    points
                }
                _ => shards[i]
                    .jobs
                    .iter()
                    .map(|&(model, seed)| {
                        self.sweep_point_with(seed, model, &mut ws, cache.as_mut())
                    })
                    .collect(),
            };
            if let Err(e) = accept_shard(
                i,
                points,
                shards,
                writer,
                done,
                state,
                remaining,
                accepted_new,
            ) {
                outcome = Err(e);
                break;
            }
            if interrupted(cfg, *accepted_new, *remaining) {
                outcome = Err(CoordinatorError::Interrupted {
                    accepted: *accepted_new,
                });
                break;
            }
        }
        // Fold the fallback's own spill activity in even on the
        // interrupted path — telemetry should survive simulated kills.
        if let Some(s) = cache.as_ref().and_then(|c| c.spill_stats()) {
            stats.spill_hits += s.hits;
            stats.spill_misses += s.misses;
            stats.spill_corrupt_segments += s.corrupt_segments;
        }
        outcome
    }
}

/// Hand `assignment` to any idle usable worker other than `exclude`,
/// recording it as that worker's current task. Returns the worker that
/// took the assignment.
fn dispatch_to<T: WorkerTransport>(
    transport: &mut T,
    current: &mut [Option<(TaskId, u32)>],
    exclude: Option<usize>,
    assignment: &Assignment,
) -> Option<usize> {
    let workers = transport.worker_count();
    for (w, slot) in current.iter_mut().enumerate().take(workers) {
        if Some(w) == exclude || slot.is_some() || !transport.usable(w) {
            continue;
        }
        if transport.try_send(w, assignment) {
            *slot = Some((assignment.task, assignment.attempt));
            return Some(w);
        }
    }
    None
}

/// A worker died or rejected its assignment: clear its current task and
/// put that task back in play. A lost *shard* burns a retry (like a
/// timeout); a lost *spot check* retries the audit until its budget is
/// spent, then accepts on the already-verified content hash — losing the
/// audit must never fail the sweep.
#[allow(clippy::too_many_arguments)]
fn requeue_lost(
    cfg: &CoordinatorConfig,
    worker: usize,
    current: &mut [Option<(TaskId, u32)>],
    shards: &[ShardSpec],
    state: &mut [ShardState],
    attempts: &mut [u32],
    done: &mut [Option<Vec<SweepPoint>>],
    writer: &mut Option<CheckpointWriter>,
    remaining: &mut usize,
    accepted_new: &mut u64,
    stats: &mut CoordinatorStats,
) -> Result<(), CoordinatorError> {
    let Some((task, _)) = current.get_mut(worker).and_then(|c| c.take()) else {
        return Ok(());
    };
    match task {
        TaskId::Shard(shard) => {
            let i = shard as usize;
            if matches!(state[i], ShardState::Running { .. }) {
                stats.retries += 1;
                attempts[i] += 1;
                if attempts[i] > cfg.max_retries {
                    return Err(CoordinatorError::ShardFailed {
                        shard,
                        attempts: attempts[i],
                    });
                }
                state[i] = ShardState::Queued {
                    ready_at: Some(Deadline::now() + backoff(cfg, attempts[i])),
                };
            }
        }
        TaskId::Spot(shard) => {
            let i = shard as usize;
            let taken = std::mem::replace(&mut state[i], ShardState::Queued { ready_at: None });
            match taken {
                ShardState::SpotRunning {
                    points,
                    computed_by,
                    spot_attempt,
                    ..
                } => {
                    let spot_attempt = spot_attempt + 1;
                    if spot_attempt > cfg.max_retries {
                        stats.spot_checks_skipped += 1;
                        accept_shard(
                            i,
                            points,
                            shards,
                            writer,
                            done,
                            state,
                            remaining,
                            accepted_new,
                        )?;
                    } else {
                        state[i] = ShardState::Held {
                            points,
                            computed_by,
                            spot_attempt,
                            ready_at: Some(Deadline::now() + backoff(cfg, spot_attempt)),
                        };
                    }
                }
                other => state[i] = other,
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_plans_are_deterministic_in_their_seed() {
        for seed in 0..8 {
            let a = FaultPlan::from_seed(seed, 4, 16);
            let b = FaultPlan::from_seed(seed, 4, 16);
            assert_eq!(a, b);
        }
        // At most one event per shard.
        let plan = FaultPlan::from_seed(3, 4, 64);
        let mut shards: Vec<u64> = plan.events().iter().map(|e| e.shard).collect();
        shards.dedup();
        assert_eq!(shards.len(), plan.events().len());
        // Different seeds disagree somewhere across a few draws.
        assert!((0..8).any(|s| FaultPlan::from_seed(s, 4, 64) != plan));
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let cfg = CoordinatorConfig {
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(70),
            ..CoordinatorConfig::default()
        };
        assert_eq!(backoff(&cfg, 1), Duration::from_millis(10));
        assert_eq!(backoff(&cfg, 2), Duration::from_millis(20));
        assert_eq!(backoff(&cfg, 3), Duration::from_millis(40));
        assert_eq!(backoff(&cfg, 4), Duration::from_millis(70));
        assert_eq!(backoff(&cfg, 30), Duration::from_millis(70));
    }
}
