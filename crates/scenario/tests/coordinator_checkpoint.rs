//! Checkpoint durability: the on-disk format round-trips every `f64` bit
//! pattern exactly, torn tails are recovered while terminated-but-corrupt
//! lines are hard errors (a bad shard is never merged), and a sweep killed
//! at *every* shard boundary resumes to bytes identical to the serial
//! sweep.

use mlf_core::allocator::MultiRate;
use mlf_core::LinkRateModel;
use mlf_scenario::checkpoint::{
    decode_point, encode_point, load_checkpoint, shard_content_hash, CheckpointError,
    CheckpointMeta, CheckpointWriter, LoadedCheckpoint, ShardRecord, TailPolicy, FORMAT,
    POINT_BYTES,
};
use mlf_scenario::{CoordinatorConfig, CoordinatorError, Scenario, ScenarioMetrics, SweepPoint};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

const SEEDS: std::ops::Range<u64> = 0..20;

static NEXT_FILE: AtomicUsize = AtomicUsize::new(0);

/// A fresh path under the system temp dir, unique per test process and
/// call (tests run concurrently in one binary).
fn tmp(tag: &str) -> PathBuf {
    let n = NEXT_FILE.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "mlf-coordinator-ckpt-{}-{tag}-{n}.jsonl",
        std::process::id()
    ))
}

fn scenario() -> Scenario {
    Scenario::builder()
        .label("coordinator-checkpoint")
        .random_networks(14, 4, 4)
        .allocator(MultiRate::new())
        .build()
        .expect("valid scenario spec")
}

fn fast_cfg(path: &Path) -> CoordinatorConfig {
    CoordinatorConfig {
        workers: 2,
        shard_size: 3,
        spot_check: 1,
        shard_timeout: Duration::from_millis(100),
        backoff_base: Duration::from_millis(2),
        backoff_cap: Duration::from_millis(20),
        checkpoint: Some(path.to_path_buf()),
        ..CoordinatorConfig::default()
    }
}

fn assert_bitwise(got: &[SweepPoint], want: &[SweepPoint]) {
    assert_eq!(got.len(), want.len(), "point count differs");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            encode_point(g),
            encode_point(w),
            "point {i} differs bitwise"
        );
    }
}

// ---------------------------------------------------------------------------
// Round-trip over arbitrary bit patterns
// ---------------------------------------------------------------------------

/// `f64`s drawn directly from bit patterns, with the exotic corners that
/// break naive float serialisation drawn often.
fn any_f64_bits() -> impl Strategy<Value = f64> {
    prop_oneof![
        any::<u64>().prop_map(f64::from_bits),
        Just(f64::NAN),
        Just(-0.0),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
        Just(f64::MIN_POSITIVE / 2.0), // subnormal
    ]
}

fn any_model() -> impl Strategy<Value = Option<LinkRateModel>> {
    prop_oneof![
        Just(None),
        Just(Some(LinkRateModel::Efficient)),
        Just(Some(LinkRateModel::Sum)),
        any_f64_bits().prop_map(|f| Some(LinkRateModel::Scaled(f))),
        any_f64_bits().prop_map(|sigma| Some(LinkRateModel::RandomJoin { sigma })),
    ]
}

fn any_point() -> impl Strategy<Value = SweepPoint> {
    (
        any::<u64>(),
        any_model(),
        (
            any_f64_bits(),
            any_f64_bits(),
            any_f64_bits(),
            any_f64_bits(),
        ),
        any::<usize>(),
        prop_oneof![Just(None), (0usize..5).prop_map(Some)],
    )
        .prop_map(
            |(seed, model, (jain, min, total, sat), iterations, props)| SweepPoint {
                seed,
                model,
                metrics: ScenarioMetrics {
                    jain_index: jain,
                    min_rate: min,
                    total_rate: total,
                    satisfaction: sat,
                    iterations,
                },
                properties_holding: props,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Write → load round-trips every point bitwise, through the real
    /// file, under the strict tail policy.
    #[test]
    fn checkpoint_file_round_trips_any_bit_pattern(
        points in proptest::collection::vec(any_point(), 1..12),
    ) {
        let path = tmp("roundtrip");
        let meta = CheckpointMeta {
            sweep: 0x005e_ed1d,
            shards: 1,
            shard_size: points.len() as u64,
        };
        let rec = ShardRecord {
            shard: 0,
            start: 0,
            hash: shard_content_hash(0, 0, &points),
            points: points.clone(),
        };
        {
            let mut w = CheckpointWriter::create(&path, &meta).expect("create");
            w.append_shard(&rec).expect("append");
        }
        let loaded = load_checkpoint(&path, &meta, TailPolicy::Strict).expect("load");
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(loaded.shards.len(), 1);
        prop_assert!(!loaded.dropped_tail);
        let got = &loaded.shards[0];
        prop_assert_eq!(got.shard, 0);
        prop_assert_eq!(got.start, 0);
        prop_assert_eq!(got.points.len(), points.len());
        for (g, w) in got.points.iter().zip(&points) {
            prop_assert_eq!(encode_point(g), encode_point(w));
        }
    }

    /// The canonical point encoding is exactly [`POINT_BYTES`] wide and
    /// `decode_point` inverts it bit for bit — NaN payloads, −0.0,
    /// infinities and subnormals included.
    #[test]
    fn point_encoding_decodes_to_identical_bits(point in any_point()) {
        let enc = encode_point(&point);
        prop_assert_eq!(enc.len(), POINT_BYTES);
        let dec = decode_point(&enc).expect("well-formed encoding decodes");
        prop_assert_eq!(encode_point(&dec), enc);
    }
}

#[test]
fn writer_resume_appends_after_the_intact_prefix() {
    // Interrupted-writer lifecycle, driven directly: create, append one
    // shard, reopen via `resume` from the loaded intact prefix, append the
    // second shard, and load the whole file back strictly.
    let path = tmp("resume-writer");
    let mk_points = |seed: u64| {
        vec![SweepPoint {
            seed,
            model: None,
            metrics: ScenarioMetrics {
                jain_index: 1.0,
                min_rate: 0.5,
                total_rate: 2.0,
                satisfaction: 0.75,
                iterations: 3,
            },
            properties_holding: Some(4),
        }]
    };
    let meta = CheckpointMeta {
        sweep: 0xab1e_cafe,
        shards: 2,
        shard_size: 1,
    };
    let rec = |shard: u64| ShardRecord {
        shard,
        start: shard,
        hash: shard_content_hash(shard, shard, &mk_points(shard)),
        points: mk_points(shard),
    };
    {
        let mut w = CheckpointWriter::create(&path, &meta).expect("create");
        w.append_shard(&rec(0)).expect("append shard 0");
    }
    let header = std::fs::read_to_string(&path).expect("readable checkpoint");
    assert!(
        header.lines().next().unwrap_or("").contains(FORMAT),
        "header line must carry the format tag {FORMAT}"
    );
    let loaded: LoadedCheckpoint =
        load_checkpoint(&path, &meta, TailPolicy::Strict).expect("intact prefix");
    assert_eq!(loaded.shards.len(), 1);
    assert_eq!(
        loaded.valid_len,
        std::fs::metadata(&path).expect("stat").len()
    );
    {
        let mut w = CheckpointWriter::resume(&path, &meta, &loaded).expect("resume");
        w.append_shard(&rec(1)).expect("append shard 1");
    }
    let full = load_checkpoint(&path, &meta, TailPolicy::Strict).expect("full file");
    std::fs::remove_file(&path).ok();
    assert_eq!(full.shards.len(), 2);
    for (i, s) in full.shards.iter().enumerate() {
        assert_eq!(s.shard, i as u64);
        assert_eq!(
            encode_point(&s.points[0]),
            encode_point(&mk_points(i as u64)[0])
        );
    }
}

// ---------------------------------------------------------------------------
// Tail surgery
// ---------------------------------------------------------------------------

/// Run one full checkpointed sweep and return (serial points, file bytes).
fn checkpointed_run(path: &PathBuf) -> (Vec<SweepPoint>, Vec<u8>) {
    let mut s = scenario();
    let serial = s.sweep(SEEDS);
    let out = s
        .coordinate(SEEDS, &fast_cfg(path))
        .expect("clean checkpointed run");
    assert_bitwise(&out.report.points, &serial.points);
    let bytes = std::fs::read(path).expect("checkpoint exists");
    (serial.points, bytes)
}

#[test]
fn torn_tail_is_recovered_and_recomputed() {
    let path = tmp("torn");
    let (serial, bytes) = checkpointed_run(&path);
    // Tear the final line mid-byte: an interrupted append, not corruption.
    std::fs::write(&path, &bytes[..bytes.len() - 7]).expect("truncate");
    let s = scenario();
    let out = s
        .coordinate(SEEDS, &fast_cfg(&path))
        .expect("torn tail resumes");
    assert_bitwise(&out.report.points, &serial);
    let shards = out.stats.shards;
    assert!(
        out.stats.shards_from_checkpoint < shards,
        "the torn shard must be recomputed, not trusted"
    );
    assert!(
        out.stats.shards_from_checkpoint > 0,
        "intact prefix is kept"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn terminated_corrupt_line_is_a_hard_error_never_merged() {
    let path = tmp("corrupt");
    let (_serial, bytes) = checkpointed_run(&path);
    // Flip one point byte in a *terminated* interior line: silent disk
    // corruption, not a torn append. Must refuse under either policy.
    let mut corrupt = bytes.clone();
    let target = corrupt
        .iter()
        .position(|&b| b == b'"')
        .map(|_| corrupt.len() / 2)
        .expect("nonempty checkpoint");
    corrupt[target] ^= 0x01;
    std::fs::write(&path, &corrupt).expect("rewrite");
    let s = scenario();
    let err = s
        .coordinate(SEEDS, &fast_cfg(&path))
        .expect_err("corrupt line must not be merged");
    match err {
        CoordinatorError::Checkpoint(
            CheckpointError::Corrupt { .. } | CheckpointError::HeaderMismatch { .. },
        ) => {}
        other => panic!("expected a checkpoint corruption error, got {other:?}"),
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn checkpoint_is_bound_to_its_sweep() {
    let path = tmp("binding");
    let (_serial, _bytes) = checkpointed_run(&path);
    // The same file offered to a different sweep (two more seeds) must be
    // rejected up front, not half-merged.
    let s = scenario();
    let err = s
        .coordinate(0..26, &fast_cfg(&path))
        .expect_err("foreign checkpoint must be rejected");
    match err {
        CoordinatorError::Checkpoint(CheckpointError::HeaderMismatch { .. }) => {}
        other => panic!("expected HeaderMismatch, got {other:?}"),
    }
    std::fs::remove_file(&path).ok();
}

// ---------------------------------------------------------------------------
// Kill/resume
// ---------------------------------------------------------------------------

#[test]
fn killed_at_every_shard_boundary_resumes_to_identical_bytes() {
    let path = tmp("kill-every");
    let mut s = scenario();
    let serial = s.sweep(SEEDS);
    // Accept exactly one new shard per run, then die — the worst-case
    // kill schedule: a kill at every shard boundary.
    let mut kills = 0u32;
    let out = loop {
        let cfg = CoordinatorConfig {
            max_new_shards: Some(1),
            ..fast_cfg(&path)
        };
        match s.coordinate(SEEDS, &cfg) {
            Ok(out) => break out,
            Err(CoordinatorError::Interrupted { .. }) => {
                kills += 1;
                assert!(kills < 100, "resume loop failed to converge");
            }
            Err(other) => panic!("unexpected failure mid-resume: {other:?}"),
        }
    };
    assert!(kills >= 5, "the cap must actually interrupt runs");
    assert_bitwise(&out.report.points, &serial.points);
    assert!(
        out.stats.shards_from_checkpoint > 0,
        "the final run must resume from disk, not recompute"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn accepted_shard_is_on_disk_before_the_coordinator_can_die() {
    // Regression for the accept-vs-merge durability window: a coordinator
    // killed after accepting a shard but before merging the sweep must
    // find that shard on disk at the next resume. `max_new_shards: 1`
    // models the kill at the worst instant, right after the accept; the
    // writer's flush+fsync on append (and on drop) is what makes the
    // line survive.
    let path = tmp("durable-accept");
    let mut s = scenario();
    let serial = s.sweep(SEEDS);
    let cfg = CoordinatorConfig {
        max_new_shards: Some(1),
        ..fast_cfg(&path)
    };
    let err = s
        .coordinate(SEEDS, &cfg)
        .expect_err("the one-shard cap interrupts the first run");
    assert!(
        matches!(err, CoordinatorError::Interrupted { .. }),
        "expected Interrupted, got {err:?}"
    );
    let text = std::fs::read_to_string(&path).expect("checkpoint survives the interrupt");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(
        lines.len(),
        2,
        "header plus exactly the one accepted shard line"
    );
    assert!(
        text.ends_with('\n'),
        "the accepted line must be terminated — a torn line would be \
         recomputed, i.e. lost"
    );
    let out = s
        .coordinate(SEEDS, &fast_cfg(&path))
        .expect("resume completes the sweep");
    assert!(
        out.stats.shards_from_checkpoint >= 1,
        "the accepted shard is trusted from disk, not recomputed"
    );
    assert_bitwise(&out.report.points, &serial.points);
    std::fs::remove_file(&path).ok();
}

#[test]
fn fully_checkpointed_sweep_resumes_without_computing_anything() {
    let path = tmp("warm");
    let (serial, _bytes) = checkpointed_run(&path);
    let s = scenario();
    // workers: 0 would autodetect; keep the fleet tiny — it should never
    // even be asked to solve.
    let out = s
        .coordinate(SEEDS, &fast_cfg(&path))
        .expect("warm resume succeeds");
    assert_bitwise(&out.report.points, &serial);
    assert_eq!(out.stats.shards_from_checkpoint, out.stats.shards);
    std::fs::remove_file(&path).ok();
}
