//! The coordinator's headline differential: the merged report is bitwise
//! identical to the serial sweep under no faults, under every seeded
//! fault plan, under targeted single-fault-class plans, and after losing
//! every worker. Tests whose names contain `chaos` are the seeded
//! fault-matrix legs CI runs as its own job (`cargo test chaos`).

use mlf_core::allocator::MultiRate;
use mlf_core::LinkRateModel;
use mlf_scenario::checkpoint::encode_point;
use mlf_scenario::{
    CoordinatorConfig, CoordinatorReport, CoordinatorStats, FaultEvent, FaultKind, FaultPlan,
    Scenario, SweepGrid, SweepPoint,
};
use std::time::Duration;

const SEEDS: std::ops::Range<u64> = 0..24;

fn scenario() -> Scenario {
    Scenario::builder()
        .label("coordinator-differential")
        .random_networks(14, 4, 4)
        .allocator(MultiRate::new())
        .build()
        .expect("valid scenario spec")
}

/// Small timeouts so injected stalls and crashes resolve in milliseconds,
/// not the production default seconds.
fn fast_cfg() -> CoordinatorConfig {
    CoordinatorConfig {
        workers: 2,
        shard_size: 2,
        spot_check: 1,
        shard_timeout: Duration::from_millis(100),
        backoff_base: Duration::from_millis(2),
        backoff_cap: Duration::from_millis(20),
        fault_plan: FaultPlan::none(),
        ..CoordinatorConfig::default()
    }
}

/// Bitwise equality via the canonical 66-byte encoding (injective on bit
/// patterns, so NaN-safe — unlike `f64` equality).
fn assert_bitwise(got: &[SweepPoint], want: &[SweepPoint]) {
    assert_eq!(got.len(), want.len(), "point count differs");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            encode_point(g),
            encode_point(w),
            "point {i} differs bitwise"
        );
    }
}

#[test]
fn fault_free_coordinator_matches_serial_sweep() {
    let mut s = scenario();
    let serial = s.sweep(SEEDS);
    for workers in [1, 2, 4] {
        for shard_size in [1, 5, 64] {
            for spot_check in [0, 2] {
                let cfg = CoordinatorConfig {
                    workers,
                    shard_size,
                    spot_check,
                    ..fast_cfg()
                };
                let out: CoordinatorReport =
                    s.coordinate(SEEDS, &cfg).expect("fault-free run succeeds");
                assert_bitwise(&out.report.points, &serial.points);
                assert_eq!(out.report.label, serial.label);
                let stats: &CoordinatorStats = &out.stats;
                assert!(!stats.serial_fallback);
                assert_eq!(stats.hash_rejects, 0);
            }
        }
    }
}

#[test]
fn coordinator_grid_matches_serial_grid_sweep() {
    let mut s = scenario();
    let grid = SweepGrid::seeds(0..8).with_models(vec![
        LinkRateModel::Efficient,
        LinkRateModel::Scaled(1.5),
        LinkRateModel::Sum,
    ]);
    let serial = s.sweep_grid(&grid);
    let out = s
        .coordinate_grid(&grid, &fast_cfg())
        .expect("grid coordination succeeds");
    assert_bitwise(&out.report.points, &serial.points);
}

/// One targeted plan per fault class, each asserting both the differential
/// and that the fault actually exercised its handling path.
#[test]
fn each_fault_class_is_survived_and_observed() {
    let mut s = scenario();
    let serial = s.sweep(SEEDS);
    let cases = [
        FaultKind::CrashWorker,
        FaultKind::Stall,
        FaultKind::CorruptHash,
        FaultKind::DuplicateShard,
    ];
    for kind in cases {
        // Arm each target shard on *both* workers: a fault event fires only
        // when its (worker, shard) pair matches the first assignment, and
        // which worker draws a shard first is a scheduling accident.
        let plan = FaultPlan::from_events(
            [1u64, 4]
                .into_iter()
                .flat_map(|shard| {
                    (0..2).map(move |worker| FaultEvent {
                        kind,
                        worker,
                        shard,
                    })
                })
                .collect(),
        );
        let cfg = CoordinatorConfig {
            fault_plan: plan,
            ..fast_cfg()
        };
        let out = s.coordinate(SEEDS, &cfg).expect("faulted run still merges");
        assert_bitwise(&out.report.points, &serial.points);
        match kind {
            FaultKind::CrashWorker => assert!(
                out.stats.timeouts > 0 || out.stats.serial_fallback,
                "crashes surface as timeouts or fallback"
            ),
            FaultKind::Stall => assert!(out.stats.timeouts > 0, "stalls surface as timeouts"),
            FaultKind::CorruptHash => assert!(
                out.stats.hash_rejects >= 2,
                "both corrupt deliveries are rejected"
            ),
            FaultKind::DuplicateShard => assert!(
                out.stats.duplicates_dropped >= 1,
                "at least one duplicate delivery is dropped"
            ),
            FaultKind::KillProcess | FaultKind::TornFrame => {
                unreachable!("process-transport kinds are exercised in tests/process_chaos.rs")
            }
        }
    }
}

#[test]
fn losing_every_worker_degrades_to_serial_with_identical_bytes() {
    let mut s = scenario();
    let serial = s.sweep(SEEDS);
    // Both workers crash on their very first assignment.
    let plan = FaultPlan::from_events(vec![
        FaultEvent {
            kind: FaultKind::CrashWorker,
            worker: 0,
            shard: 0,
        },
        FaultEvent {
            kind: FaultKind::CrashWorker,
            worker: 1,
            shard: 1,
        },
    ]);
    let cfg = CoordinatorConfig {
        fault_plan: plan,
        ..fast_cfg()
    };
    let out = s.coordinate(SEEDS, &cfg).expect("degrades, not fails");
    assert!(out.stats.serial_fallback, "expected the serial fallback");
    assert_bitwise(&out.report.points, &serial.points);
}

/// The seeded chaos matrix: every drawn plan, at both fleet sizes, merges
/// the exact bytes of the fault-free serial sweep.
fn chaos_leg(fault_seed: u64, workers: usize) {
    let mut s = scenario();
    let serial = s.sweep(SEEDS);
    let shard_size = 2usize;
    let shards = (SEEDS.end as usize).div_ceil(shard_size) as u64;
    let cfg = CoordinatorConfig {
        workers,
        shard_size,
        fault_plan: FaultPlan::from_seed(fault_seed, workers, shards),
        ..fast_cfg()
    };
    let out = s.coordinate(SEEDS, &cfg).expect("chaos run still merges");
    assert_bitwise(&out.report.points, &serial.points);
}

#[test]
fn chaos_seed_1_workers_2() {
    chaos_leg(1, 2);
}

#[test]
fn chaos_seed_2_workers_2() {
    chaos_leg(2, 2);
}

#[test]
fn chaos_seed_3_workers_8() {
    chaos_leg(3, 8);
}

#[test]
fn chaos_seed_4_workers_8() {
    chaos_leg(4, 8);
}

#[test]
fn chaos_seed_5_workers_2() {
    chaos_leg(5, 2);
}

#[test]
fn chaos_seed_6_workers_8() {
    chaos_leg(6, 8);
}
