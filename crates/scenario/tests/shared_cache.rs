//! Integration tests for [`SharedSolveCache`]: pooling solves across
//! reporting-variant scenarios while keeping solve-relevant variants
//! disjoint, and the population-order regression — however the pool was
//! warmed, a canonical sweep replays all hits with bitwise-identical
//! points.

use mlf_core::allocator::{MultiRate, SingleRate};
use mlf_layering::LayerSchedule;
use mlf_scenario::{Scenario, SharedSolveCache};

#[test]
fn shared_cache_pools_solves_across_reporting_variants() {
    // Scenarios that differ only in reporting — label, layering ladder —
    // perform identical solves; pooling one SharedSolveCache means the
    // second scenario never solves at all.
    let shared = SharedSolveCache::new();
    let mut a = Scenario::builder()
        .label("reporting-a")
        .random_networks(12, 4, 4)
        .allocator(MultiRate::new())
        .shared_cache(&shared)
        .build()
        .unwrap();
    let mut b = Scenario::builder()
        .label("reporting-b")
        .random_networks(12, 4, 4)
        .allocator(MultiRate::new())
        .layering(LayerSchedule::exponential(4))
        .shared_cache(&shared)
        .build()
        .unwrap();
    let ra = a.sweep(0..8);
    let rb = b.sweep(0..8);
    assert_eq!((ra.cache.hits, ra.cache.misses), (0, 8));
    assert_eq!(
        (rb.cache.hits, rb.cache.misses),
        (8, 0),
        "reporting variant must be served entirely from the pool"
    );
    assert_eq!(b.solves(), 0);
    assert_eq!(shared.len(), 8);
    assert!(!shared.is_empty());
    // Pooled points agree bit for bit with an unshared, uncached run.
    let fresh = Scenario::builder()
        .random_networks(12, 4, 4)
        .allocator(MultiRate::new())
        .cache_capacity(0, 0)
        .build()
        .unwrap()
        .sweep(0..8);
    assert_eq!(rb.points, fresh.points);
    // Dropping the pool is observable; a later sweep re-misses, repopulates,
    // and still produces the same bytes.
    shared.clear();
    assert!(shared.is_empty());
    let rc = a.sweep(0..8);
    assert_eq!(
        (rc.cache.hits, rc.cache.misses),
        (0, 8),
        "cleared pool re-misses"
    );
    assert_eq!(shared.len(), 8, "the sweep repopulates the pool");
    assert_eq!(rc.points, fresh.points);
}

#[test]
fn shared_cache_keeps_solve_relevant_variants_disjoint() {
    // One pool, three scenarios whose *solves* differ: a different
    // allocator and a disabled property audit must each miss and
    // produce exactly the points their unshared equivalents would.
    let shared = SharedSolveCache::new();
    let rm = Scenario::builder()
        .random_networks(12, 4, 4)
        .allocator(MultiRate::new())
        .shared_cache(&shared)
        .build()
        .unwrap()
        .sweep(0..6);
    let rs = Scenario::builder()
        .random_networks(12, 4, 4)
        .allocator(SingleRate::new())
        .shared_cache(&shared)
        .build()
        .unwrap()
        .sweep(0..6);
    assert_eq!(
        (rs.cache.hits, rs.cache.misses),
        (0, 6),
        "a different allocator must never hit the pool"
    );
    let ro = Scenario::builder()
        .random_networks(12, 4, 4)
        .allocator(MultiRate::new())
        .check_properties(false)
        .shared_cache(&shared)
        .build()
        .unwrap()
        .sweep(0..6);
    assert_eq!(
        (ro.cache.hits, ro.cache.misses),
        (0, 6),
        "the audit switch shapes points and must key disjoint entries"
    );
    assert!(ro.points.iter().all(|p| p.properties_holding.is_none()));
    let unshared = |single: bool| {
        let b = Scenario::builder()
            .random_networks(12, 4, 4)
            .cache_capacity(0, 0);
        let b = if single {
            b.allocator(SingleRate::new())
        } else {
            b.allocator(MultiRate::new())
        };
        b.build().unwrap().sweep(0..6)
    };
    assert_eq!(rm.points, unshared(false).points);
    assert_eq!(rs.points, unshared(true).points);
    assert_ne!(rm.points, rs.points, "regimes actually differ here");
}

#[test]
fn shared_cache_population_order_is_immaterial() {
    // The satellite regression: whatever order (and through whichever
    // scenario) the pool was populated, a canonical sweep replays all
    // hits and bitwise-identical points.
    let canonical = Scenario::builder()
        .random_networks(12, 4, 4)
        .allocator(MultiRate::new())
        .cache_capacity(0, 0)
        .build()
        .unwrap()
        .sweep(0..8);
    let orders: [[u64; 8]; 3] = [
        [0, 1, 2, 3, 4, 5, 6, 7],
        [7, 6, 5, 4, 3, 2, 1, 0],
        [3, 0, 7, 2, 5, 1, 6, 4],
    ];
    for order in orders {
        let shared = SharedSolveCache::new();
        let mk = |label: &str| {
            Scenario::builder()
                .label(label)
                .random_networks(12, 4, 4)
                .allocator(MultiRate::new())
                .shared_cache(&shared)
                .build()
                .unwrap()
        };
        mk("warmer").sweep(order);
        let out = mk("reader").sweep(0..8);
        assert_eq!(
            (out.cache.hits, out.cache.misses),
            (8, 0),
            "population order {order:?} left the pool incomplete"
        );
        assert_eq!(out.points, canonical.points, "order {order:?} diverged");
    }
}
