//! Process-transport chaos: the supervised worker-process fleet merges
//! bytes identical to the serial sweep under no faults, under explicit
//! kill-the-worker-process and torn-frame plans, under the seeded
//! six-kind process fault matrix at both fleet sizes, with the disk
//! spill tier enabled, and across a kill-the-coordinator resume loop.
//!
//! Built with `harness = false`: child worker processes re-execute this
//! binary, so `main` must route them into the stdio worker loop before
//! any test runs.

use mlf_core::allocator::MultiRate;
use mlf_scenario::checkpoint::encode_point;
use mlf_scenario::{
    CoordinatorConfig, CoordinatorError, FaultEvent, FaultKind, FaultPlan, ProcessConfig, Scenario,
    SweepPoint, TransportKind,
};
use std::path::PathBuf;
use std::time::Duration;

const SEEDS: std::ops::Range<u64> = 0..24;

fn main() {
    // Child processes re-enter this binary with the worker env/arg set;
    // this call turns them into stdio workers and never returns.
    mlf_scenario::transport::maybe_run_process_worker();

    let tests: &[(&str, fn())] = &[
        (
            "fault_free_process_fleet_matches_serial_sweep",
            fault_free_process_fleet_matches_serial_sweep,
        ),
        (
            "killed_worker_process_is_respawned_and_bytes_match",
            killed_worker_process_is_respawned_and_bytes_match,
        ),
        (
            "torn_frames_are_rejected_and_recomputed",
            torn_frames_are_rejected_and_recomputed,
        ),
        ("seeded_process_chaos_matrix", seeded_process_chaos_matrix),
        (
            "thread_transport_survives_process_fault_plans",
            thread_transport_survives_process_fault_plans,
        ),
        (
            "spill_tier_serves_a_second_fleet_run",
            spill_tier_serves_a_second_fleet_run,
        ),
        (
            "killed_coordinator_resumes_process_fleet_to_identical_bytes",
            killed_coordinator_resumes_process_fleet_to_identical_bytes,
        ),
    ];
    let mut failed = 0usize;
    for (name, test) in tests {
        eprintln!("test {name} ...");
        match std::panic::catch_unwind(test) {
            Ok(()) => eprintln!("test {name} ... ok"),
            Err(_) => {
                failed += 1;
                eprintln!("test {name} ... FAILED");
            }
        }
    }
    if failed > 0 {
        eprintln!("{failed} process-chaos leg(s) failed");
        std::process::exit(1);
    }
    eprintln!("all process-chaos legs passed");
}

fn scenario() -> Scenario {
    Scenario::builder()
        .label("process-chaos")
        .random_networks(14, 4, 4)
        .allocator(MultiRate::new())
        .build()
        .expect("valid scenario spec")
}

/// Process-fleet config: the same small shards and fast retry clocks as
/// the thread-transport differential, plus a tight respawn backoff so
/// kill-and-respawn cycles resolve in milliseconds.
fn process_cfg(workers: usize) -> CoordinatorConfig {
    CoordinatorConfig {
        workers,
        shard_size: 2,
        spot_check: 1,
        shard_timeout: Duration::from_secs(2),
        backoff_base: Duration::from_millis(2),
        backoff_cap: Duration::from_millis(20),
        transport: TransportKind::Process(ProcessConfig {
            respawn_backoff: Duration::from_millis(2),
            respawn_backoff_cap: Duration::from_millis(50),
            ..ProcessConfig::default()
        }),
        ..CoordinatorConfig::default()
    }
}

/// A unique scratch directory for spill segments / checkpoints.
fn tmp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mlf-process-chaos-{}-{tag}", std::process::id()))
}

fn assert_bitwise(got: &[SweepPoint], want: &[SweepPoint]) {
    assert_eq!(got.len(), want.len(), "point count differs");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            encode_point(g),
            encode_point(w),
            "point {i} differs bitwise"
        );
    }
}

/// Arm `kind` on every worker for the given shards: a fault event fires
/// only when its (worker, shard) pair matches the first assignment, and
/// which worker draws a shard first is a scheduling accident.
fn plan_on_all_workers(kind: FaultKind, workers: usize, shards: &[u64]) -> FaultPlan {
    FaultPlan::from_events(
        shards
            .iter()
            .flat_map(|&shard| {
                (0..workers).map(move |worker| FaultEvent {
                    kind,
                    worker,
                    shard,
                })
            })
            .collect(),
    )
}

fn fault_free_process_fleet_matches_serial_sweep() {
    let mut s = scenario();
    let serial = s.sweep(SEEDS);
    for workers in [1, 2, 4] {
        let out = s
            .coordinate(SEEDS, &process_cfg(workers))
            .expect("fault-free process run succeeds");
        assert_bitwise(&out.report.points, &serial.points);
        assert!(!out.stats.serial_fallback, "no fallback without faults");
        assert_eq!(out.stats.respawns, 0, "no respawns without faults");
        assert_eq!(out.stats.frames_rejected, 0);
    }
}

fn killed_worker_process_is_respawned_and_bytes_match() {
    let mut s = scenario();
    let serial = s.sweep(SEEDS);
    let cfg = CoordinatorConfig {
        fault_plan: plan_on_all_workers(FaultKind::KillProcess, 2, &[1, 4]),
        ..process_cfg(2)
    };
    let out = s
        .coordinate(SEEDS, &cfg)
        .expect("killed fleet still merges");
    assert_bitwise(&out.report.points, &serial.points);
    assert!(
        out.stats.respawns > 0,
        "a SIGKILLed worker process must be respawned (stats: {:?})",
        out.stats
    );
}

fn torn_frames_are_rejected_and_recomputed() {
    let mut s = scenario();
    let serial = s.sweep(SEEDS);
    let cfg = CoordinatorConfig {
        fault_plan: plan_on_all_workers(FaultKind::TornFrame, 2, &[1, 4]),
        ..process_cfg(2)
    };
    let out = s.coordinate(SEEDS, &cfg).expect("torn frames still merge");
    assert_bitwise(&out.report.points, &serial.points);
    assert!(
        out.stats.frames_rejected > 0,
        "a torn frame must surface as a rejection (stats: {:?})",
        out.stats
    );
}

fn seeded_process_chaos_matrix() {
    let mut s = scenario();
    let serial = s.sweep(SEEDS);
    let shards = (SEEDS.end as usize).div_ceil(2) as u64;
    for (fault_seed, workers) in [(1u64, 2usize), (2, 2), (3, 8), (4, 8)] {
        let cfg = CoordinatorConfig {
            fault_plan: FaultPlan::from_seed_process(fault_seed, workers, shards),
            ..process_cfg(workers)
        };
        let out = s
            .coordinate(SEEDS, &cfg)
            .expect("seeded process chaos still merges");
        assert_bitwise(&out.report.points, &serial.points);
    }
}

/// The six-kind process plans must also be survivable on the in-process
/// thread transport: `KillProcess` degrades to a worker crash and
/// `TornFrame` to a modelled frame rejection.
fn thread_transport_survives_process_fault_plans() {
    let mut s = scenario();
    let serial = s.sweep(SEEDS);
    let shards = (SEEDS.end as usize).div_ceil(2) as u64;
    for fault_seed in [1u64, 2, 3] {
        let cfg = CoordinatorConfig {
            fault_plan: FaultPlan::from_seed_process(fault_seed, 2, shards),
            transport: TransportKind::Threads,
            ..process_cfg(2)
        };
        let out = s
            .coordinate(SEEDS, &cfg)
            .expect("thread transport survives process plans");
        assert_bitwise(&out.report.points, &serial.points);
    }
}

fn spill_tier_serves_a_second_fleet_run() {
    let dir = tmp_dir("spill");
    let _ = std::fs::remove_dir_all(&dir);
    // A solve cache small enough that most of the sweep is evicted (and
    // therefore spilled) before the run ends; one worker so the second
    // run's lookups land on the segment the first run wrote.
    let build = || {
        Scenario::builder()
            .label("process-chaos")
            .random_networks(14, 4, 4)
            .allocator(MultiRate::new())
            .cache_capacity(4, 4)
            .build()
            .expect("valid scenario spec")
    };
    let serial = build().sweep(SEEDS);
    let cfg = CoordinatorConfig {
        spill_dir: Some(dir.clone()),
        ..process_cfg(1)
    };
    let first = build()
        .coordinate(SEEDS, &cfg)
        .expect("first spill-enabled run succeeds");
    assert_bitwise(&first.report.points, &serial.points);
    assert!(
        dir.join("worker-0.spill").exists(),
        "the worker must have written its spill segment"
    );
    let second = build()
        .coordinate(SEEDS, &cfg)
        .expect("second spill-enabled run succeeds");
    assert_bitwise(&second.report.points, &serial.points);
    assert!(
        second.stats.spill_hits > 0,
        "the second run must be served from the spill segment (stats: {:?})",
        second.stats
    );
    assert_eq!(second.stats.spill_corrupt_segments, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

fn killed_coordinator_resumes_process_fleet_to_identical_bytes() {
    let dir = tmp_dir("resume");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let ckpt = dir.join("sweep.ckpt");
    let mut s = scenario();
    let serial = s.sweep(SEEDS);
    // Accept exactly one new shard per run, then die — a coordinator kill
    // at every shard boundary, each restart driving a fresh process fleet
    // against the same checkpoint and spill directory.
    let mut kills = 0u32;
    let out = loop {
        let cfg = CoordinatorConfig {
            checkpoint: Some(ckpt.clone()),
            spill_dir: Some(dir.join("spill")),
            max_new_shards: Some(1),
            ..process_cfg(2)
        };
        match s.coordinate(SEEDS, &cfg) {
            Ok(out) => break out,
            Err(CoordinatorError::Interrupted { .. }) => {
                kills += 1;
                assert!(kills < 100, "resume loop failed to converge");
            }
            Err(other) => panic!("unexpected failure mid-resume: {other:?}"),
        }
    };
    assert!(kills >= 5, "the cap must actually interrupt runs");
    assert_bitwise(&out.report.points, &serial.points);
    assert!(
        out.stats.shards_from_checkpoint > 0,
        "the final run must resume from disk, not recompute"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
