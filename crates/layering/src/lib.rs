//! # mlf-layering — layered multicast machinery
//!
//! Section 3 of *"The Impact of Multicast Layering on Network Fairness"*
//! (SIGCOMM '99) as a library:
//!
//! * [`layers`] — layer-rate schedules with cumulative-subscription
//!   semantics, including the Section 4 exponential schedule
//!   (`aggregate(1..=i) = 2^{i−1}`);
//! * [`fixed`] — exhaustive proof that max-min fair allocations need not
//!   exist when receivers hold fixed layer prefixes (the single-link
//!   `(c/3 ×3)` vs `(c/2 ×2)` example);
//! * [`quantum`] — per-quantum join/leave packet scheduling: coordinated
//!   prefix subsets (redundancy 1), uncoordinated random subsets, and
//!   Bresenham quota schedules that hit fractional average rates;
//! * [`randomjoin`] — the Appendix B closed form and the full Figure 5
//!   sweep (analytic + Monte-Carlo).
//!
//! ## Example
//!
//! ```
//! use mlf_layering::{layers::LayerSchedule, randomjoin};
//!
//! // The Section 4 exponential layering.
//! let s = LayerSchedule::exponential(8);
//! assert_eq!(s.cumulative_rate(8), 128.0);
//!
//! // Ten uncoordinated receivers each taking 10% of one layer use the
//! // link ~6.5x less efficiently than one coordinated receiver would.
//! let red = randomjoin::analytic_redundancy(&vec![0.1; 10], 1.0);
//! assert!(red > 6.0 && red < 7.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fixed;
pub mod layers;
pub mod quantum;
pub mod randomjoin;

pub use fixed::FixedLayerAnalysis;
pub use fixed::{analyze, section3_example};
pub use layers::LayerSchedule;
pub use quantum::{
    long_term_redundancy, measured_redundancy, prefix_subsets, random_subsets, rate_quota_schedule,
    SelectionMode,
};
pub use randomjoin::expected_link_rate;
pub use randomjoin::{analytic_redundancy, figure5_series, Figure5Config};
