//! Fixed-layer subscriptions: when receivers must hold a layer prefix for
//! the whole session, a max-min fair allocation **need not exist**
//! (Section 3's opening result).
//!
//! With each receiver restricted to the finite rate set of its session's
//! [`LayerSchedule`], the feasible allocations form a finite set. This
//! module enumerates that set and searches it for a max-min fair element
//! under Definition 1, reproducing the paper's single-link example: layers
//! `(c/3, c/3, c/3)` vs `(c/2, c/2)` admit *no* max-min fair allocation.

use crate::layers::LayerSchedule;
use mlf_core::allocation::Allocation;
use mlf_core::linkrate::LinkRateConfig;
use mlf_net::Network;

/// Outcome of the exhaustive fixed-layer max-min search.
// mlf-lint: allow(unused-pub, reason = "reachable through public fn signatures and returned values; the ident-based usage scan cannot see type flow")
#[derive(Debug, Clone)]
pub struct FixedLayerAnalysis {
    /// Every feasible allocation (receiver rates drawn from the cumulative
    /// layer rates; single-rate sessions take a common level).
    pub feasible: Vec<Allocation>,
    /// The max-min fair allocation among them, if one exists.
    pub max_min: Option<Allocation>,
}

/// Enumerate all feasible fixed-prefix allocations of `net` (session `i`
/// using `schedules[i]`) and search for a max-min fair one.
///
/// Receiver rates are `schedules[i].cumulative_rate(level)` for per-receiver
/// levels (multi-rate) or one common level per session (single-rate).
/// Feasibility uses the given link-rate configuration. Intended for small
/// instances — the state space is `∏ (M_i + 1)^{k_i}`; an assert guards
/// against blowups beyond 2'000'000 combinations.
pub fn analyze(
    net: &Network,
    schedules: &[LayerSchedule],
    cfg: &LinkRateConfig,
) -> FixedLayerAnalysis {
    assert_eq!(
        schedules.len(),
        net.session_count(),
        "one schedule per session"
    );
    // Choice dimensions: one level per receiver (multi-rate) or per session
    // (single-rate).
    struct Dim {
        session: usize,
        receiver: Option<usize>, // None = whole session (single-rate)
        levels: usize,           // number of options (M_i + 1)
    }
    let mut dims = Vec::new();
    let mut space: u64 = 1;
    for (i, s) in net.sessions().iter().enumerate() {
        let options = (schedules[i].layer_count() + 1) as u64;
        if s.kind.is_single_rate() {
            dims.push(Dim {
                session: i,
                receiver: None,
                levels: options as usize,
            });
            space = space.saturating_mul(options);
        } else {
            for k in 0..s.receivers.len() {
                dims.push(Dim {
                    session: i,
                    receiver: Some(k),
                    levels: options as usize,
                });
                space = space.saturating_mul(options);
            }
        }
    }
    assert!(
        space <= 2_000_000,
        "fixed-layer enumeration space too large ({space})"
    );

    let mut feasible = Vec::new();
    let mut choice = vec![0usize; dims.len()];
    'outer: loop {
        // Materialize the allocation for this choice vector.
        let mut rates: Vec<Vec<f64>> = net
            .sessions()
            .iter()
            .map(|s| vec![0.0; s.receivers.len()])
            .collect();
        for (d, &lvl) in dims.iter().zip(&choice) {
            let rate = schedules[d.session].cumulative_rate(lvl);
            match d.receiver {
                Some(k) => rates[d.session][k] = rate,
                None => {
                    for a in rates[d.session].iter_mut() {
                        *a = rate;
                    }
                }
            }
        }
        let alloc = Allocation::from_rates(rates);
        if alloc.is_feasible(net, cfg) {
            feasible.push(alloc);
        }
        // Odometer increment.
        for pos in 0..dims.len() {
            choice[pos] += 1;
            if choice[pos] < dims[pos].levels {
                continue 'outer;
            }
            choice[pos] = 0;
        }
        break;
    }

    let max_min = find_max_min(&feasible);
    FixedLayerAnalysis { feasible, max_min }
}

/// Search a finite set of feasible allocations for a max-min fair one, by
/// the literal Definition 1: `A` is max-min fair iff for every feasible `B`
/// and every receiver `r` with `B_r > A_r`, some receiver `r' ≠ r` has
/// `A_{r'} ≤ A_r` and `B_{r'} < A_{r'}`.
pub(crate) fn find_max_min(feasible: &[Allocation]) -> Option<Allocation> {
    feasible
        .iter()
        .find(|a| is_max_min_within(a, feasible))
        .cloned()
}

/// The Definition 1 predicate restricted to a finite feasible set.
pub fn is_max_min_within(candidate: &Allocation, feasible: &[Allocation]) -> bool {
    let a: Vec<f64> = candidate.rates().iter().flatten().copied().collect();
    for other in feasible {
        let b: Vec<f64> = other.rates().iter().flatten().copied().collect();
        for r in 0..a.len() {
            if b[r] > a[r] + 1e-12 {
                // Some r' with a[r'] <= a[r] must lose out in B.
                let compensated = (0..a.len())
                    .filter(|&x| x != r)
                    .any(|x| a[x] <= a[r] + 1e-12 && b[x] < a[x] - 1e-12);
                if !compensated {
                    return false;
                }
            }
        }
    }
    true
}

/// The paper's single-link example, parameterized by the link capacity `c`:
/// two unicast layered sessions, `S1` with three layers of `c/3`, `S2` with
/// two layers of `c/2`. Returns the analysis, whose `max_min` is `None`.
pub fn section3_example(capacity: f64) -> FixedLayerAnalysis {
    let net = mlf_net::paper::single_link(capacity);
    let schedules = vec![
        LayerSchedule::uniform(3, capacity / 3.0),
        LayerSchedule::uniform(2, capacity / 2.0),
    ];
    let cfg = LinkRateConfig::efficient(2);
    analyze(&net, &schedules, &cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlf_net::{Graph, Session};

    #[test]
    fn section3_example_has_no_max_min_allocation() {
        let analysis = section3_example(6.0);
        // The paper lists 7 feasible allocations:
        // (0,0) (0,c/2) (0,c) (c/3,0) (c/3,c/2) (2c/3,0) (c,0).
        assert_eq!(analysis.feasible.len(), 7);
        assert!(
            analysis.max_min.is_none(),
            "no fixed-layer max-min fair allocation exists"
        );
    }

    #[test]
    fn section3_feasible_set_matches_paper() {
        let analysis = section3_example(6.0);
        let mut pairs: Vec<(f64, f64)> = analysis
            .feasible
            .iter()
            .map(|a| (a.rates()[0][0], a.rates()[1][0]))
            .collect();
        pairs.sort_by(|x, y| x.0.total_cmp(&y.0).then(x.1.total_cmp(&y.1)));
        let mut expected: Vec<(f64, f64)> = vec![
            (0.0, 0.0),
            (0.0, 3.0),
            (0.0, 6.0),
            (2.0, 0.0),
            (2.0, 3.0),
            (4.0, 0.0),
            (6.0, 0.0),
        ];
        expected.sort_by(|x, y| x.0.total_cmp(&y.0).then(x.1.total_cmp(&y.1)));
        assert_eq!(pairs, expected);
    }

    #[test]
    fn compatible_layers_do_admit_a_max_min_allocation() {
        // If both sessions layer at c/2, (c/2, c/2) is feasible and max-min.
        let net = mlf_net::paper::single_link(6.0);
        let schedules = vec![
            LayerSchedule::uniform(2, 3.0),
            LayerSchedule::uniform(2, 3.0),
        ];
        let cfg = LinkRateConfig::efficient(2);
        let analysis = analyze(&net, &schedules, &cfg);
        let mm = analysis.max_min.expect("exists");
        assert_eq!(mm.rates(), &[vec![3.0], vec![3.0]]);
    }

    #[test]
    fn single_rate_sessions_share_one_level() {
        // A single-rate 2-receiver session behind one shared link: levels
        // are chosen per-session, so the feasible set is small.
        let mut g = Graph::new();
        let n = g.add_nodes(3);
        g.add_link(n[0], n[1], 4.0).unwrap();
        g.add_link(n[0], n[2], 4.0).unwrap();
        let net = Network::new(g, vec![Session::single_rate(n[0], vec![n[1], n[2]])]).unwrap();
        let schedules = vec![LayerSchedule::uniform(2, 2.0)];
        let cfg = LinkRateConfig::efficient(1);
        let analysis = analyze(&net, &schedules, &cfg);
        // Levels 0, 1, 2 → rates (0,0), (2,2), (4,4); all feasible.
        assert_eq!(analysis.feasible.len(), 3);
        let mm = analysis.max_min.expect("exists");
        assert_eq!(mm.rates(), &[vec![4.0, 4.0]]);
    }

    #[test]
    fn definition_check_flags_dominated_allocations() {
        let a = Allocation::from_rates(vec![vec![1.0], vec![1.0]]);
        let b = Allocation::from_rates(vec![vec![2.0], vec![1.0]]);
        // a is not max-min within {a, b}: b raises receiver 0 for free.
        assert!(!is_max_min_within(&a, &[a.clone(), b.clone()]));
        assert!(is_max_min_within(&b, &[a.clone(), b.clone()]));
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn enumeration_guard_trips() {
        // 1 session × 8 receivers × 21 levels ≈ 3.7e10 combinations.
        let mut g = Graph::new();
        let hub = g.add_node();
        let mut receivers = Vec::new();
        for _ in 0..8 {
            let r = g.add_node();
            g.add_link(hub, r, 100.0).unwrap();
            receivers.push(r);
        }
        let net = Network::new(g, vec![Session::multi_rate(hub, receivers)]).unwrap();
        let schedules = vec![LayerSchedule::uniform(20, 1.0)];
        let _ = analyze(&net, &schedules, &LinkRateConfig::efficient(1));
    }
}
