//! Layer-rate schedules: how a sender splits its data across multicast
//! groups.
//!
//! Data is split into `M` ordered layers `L_1, ..., L_M`, each transmitted on
//! its own multicast group (Section 3). Subscriptions are *cumulative*: a
//! receiver joined "up to" layer `i` is subscribed to every layer `1..=i`
//! and receives their aggregate rate. Joining raises the aggregate, leaving
//! lowers it.
//!
//! The Section 4 protocols use the exponential schedule of Vicisano et al.:
//! the aggregate rate of layers `1..=i` equals `2^{i−1}`, i.e. layer rates
//! `1, 1, 2, 4, 8, ...` (see [`LayerSchedule::exponential`]).

/// A sender's layer configuration: per-layer rates, with cumulative-
/// subscription semantics. Subscription *levels* are counted `0..=M`:
/// level 0 means "not joined to any layer", level `i` means joined up to
/// layer `L_i`.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerSchedule {
    /// Rate of each individual layer, `rates[i]` being layer `L_{i+1}`'s.
    rates: Vec<f64>,
    /// `cumulative[i]` = aggregate rate at subscription level `i`
    /// (`cumulative[0] = 0`).
    cumulative: Vec<f64>,
}

impl LayerSchedule {
    /// Build a schedule from explicit per-layer rates.
    ///
    /// # Panics
    ///
    /// Panics if no layers are given or any rate is non-positive/non-finite.
    pub fn from_rates(rates: Vec<f64>) -> Self {
        assert!(!rates.is_empty(), "need at least one layer");
        assert!(
            rates.iter().all(|r| r.is_finite() && *r > 0.0),
            "layer rates must be positive and finite"
        );
        let mut cumulative = Vec::with_capacity(rates.len() + 1);
        cumulative.push(0.0);
        let mut acc = 0.0;
        for &r in &rates {
            acc += r;
            cumulative.push(acc);
        }
        LayerSchedule { rates, cumulative }
    }

    /// `layers` equal-rate layers of the given rate each.
    pub fn uniform(layers: usize, rate: f64) -> Self {
        Self::from_rates(vec![rate; layers])
    }

    /// The Section 4 exponential schedule: aggregate of layers `1..=i` is
    /// `2^{i−1}` (in units of the base rate), so per-layer rates are
    /// `1, 1, 2, 4, ..., 2^{M−2}`.
    pub fn exponential(layers: usize) -> Self {
        assert!((1..60).contains(&layers), "layer count out of range");
        let rates = (0..layers)
            .map(|i| {
                if i == 0 {
                    1.0
                } else {
                    (1u64 << (i - 1)) as f64
                }
            })
            .collect();
        Self::from_rates(rates)
    }

    /// Number of layers `M`.
    pub fn layer_count(&self) -> usize {
        self.rates.len()
    }

    /// Rate of layer `L_i` (1-based, matching the paper's numbering).
    pub fn layer_rate(&self, i: usize) -> f64 {
        assert!(i >= 1 && i <= self.rates.len(), "layer index out of range");
        self.rates[i - 1]
    }

    /// Aggregate rate at subscription level `level ∈ 0..=M`.
    pub fn cumulative_rate(&self, level: usize) -> f64 {
        self.cumulative[level]
    }

    /// All aggregate rates, `[0, r_1, r_1+r_2, ...]`.
    pub fn cumulative_rates(&self) -> &[f64] {
        &self.cumulative
    }

    /// The full aggregate rate (all layers joined); `0.0` with no layers.
    pub fn total_rate(&self) -> f64 {
        self.cumulative.last().copied().unwrap_or(0.0)
    }

    /// The highest subscription level whose aggregate rate does not exceed
    /// `rate` (the best fixed subscription for a receiver whose fair rate is
    /// `rate`).
    pub fn level_for_rate(&self, rate: f64) -> usize {
        let mut level = 0;
        for (i, &c) in self.cumulative.iter().enumerate() {
            if c <= rate + 1e-12 {
                level = i;
            } else {
                break;
            }
        }
        level
    }

    /// Whether some subscription level yields exactly `rate`.
    // mlf-lint: allow(unused-pub, reason = "intentional API surface kept public alongside its siblings")
    pub fn rate_is_achievable(&self, rate: f64) -> bool {
        self.cumulative.iter().any(|&c| (c - rate).abs() <= 1e-12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_matches_section4() {
        let s = LayerSchedule::exponential(8);
        // Aggregate of layers 1..=i is 2^{i-1}.
        for i in 1..=8 {
            assert_eq!(s.cumulative_rate(i), (1u64 << (i - 1)) as f64, "level {i}");
        }
        assert_eq!(s.layer_rate(1), 1.0);
        assert_eq!(s.layer_rate(2), 1.0);
        assert_eq!(s.layer_rate(3), 2.0);
        assert_eq!(s.layer_rate(8), 64.0);
        assert_eq!(s.total_rate(), 128.0);
    }

    #[test]
    fn uniform_layers() {
        let s = LayerSchedule::uniform(3, 2.0);
        assert_eq!(s.cumulative_rates(), &[0.0, 2.0, 4.0, 6.0]);
        assert_eq!(s.layer_count(), 3);
    }

    #[test]
    fn level_for_rate_picks_the_floor() {
        let s = LayerSchedule::exponential(4); // cum: 0,1,2,4,8
        assert_eq!(s.level_for_rate(0.0), 0);
        assert_eq!(s.level_for_rate(0.9), 0);
        assert_eq!(s.level_for_rate(1.0), 1);
        assert_eq!(s.level_for_rate(3.0), 2);
        assert_eq!(s.level_for_rate(100.0), 4);
    }

    #[test]
    fn achievability() {
        let s = LayerSchedule::from_rates(vec![2.0, 3.0]);
        assert!(s.rate_is_achievable(0.0));
        assert!(s.rate_is_achievable(2.0));
        assert!(s.rate_is_achievable(5.0));
        assert!(!s.rate_is_achievable(3.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_rates() {
        let _ = LayerSchedule::from_rates(vec![1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn rejects_empty() {
        let _ = LayerSchedule::from_rates(vec![]);
    }
}
