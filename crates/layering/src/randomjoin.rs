//! Figure 5: redundancy of a single layer under random joins.
//!
//! Appendix B derives the expected per-quantum bandwidth of a session on a
//! link when each downstream receiver picks its packets uniformly at random:
//! `E[U_{i,j}] = σ(1 − ∏_t(1 − a_t/σ))`. Figure 5 plots the induced
//! redundancy `E[U]/max a_t` against the number of receivers for five rate
//! configurations (`All 0.1`, `All 0.5`, `All 0.9`, `1st .5 rest .1`,
//! `1st .9 rest .1`, all with `σ = 1`).
//!
//! Key shapes the paper reads off the figure (and the tests pin down):
//!
//! * redundancy is bounded above by `σ / max a_t` and approaches that bound
//!   as receivers multiply;
//! * for a fixed efficient link rate, identical receiver rates drive
//!   redundancy up fastest;
//! * the first receiver's high rate anchors the denominator, so
//!   `1st .9 rest .1` stays near 1.1 while `All 0.1` climbs toward 10.

use crate::quantum::{long_term_redundancy, SelectionMode};
use mlf_core::linkrate::LinkRateModel;

/// The Appendix B closed form `E[U] = σ(1 − ∏(1 − a_t/σ))`.
// mlf-lint: allow(unused-pub, reason = "intentional API surface kept public alongside its siblings")
pub fn expected_link_rate(rates: &[f64], sigma: f64) -> f64 {
    LinkRateModel::RandomJoin { sigma }.link_rate(rates)
}

/// Analytic redundancy of a single random-join layer: `E[U] / max a_t`.
/// Returns 1.0 for empty/zero rate sets (the degenerate efficient case).
pub fn analytic_redundancy(rates: &[f64], sigma: f64) -> f64 {
    LinkRateModel::RandomJoin { sigma }.redundancy(rates)
}

/// The named receiver-rate configurations of Figure 5 (σ = 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Figure5Config {
    /// Every receiver at rate 0.1.
    All01,
    /// Every receiver at rate 0.5.
    All05,
    /// Every receiver at rate 0.9.
    All09,
    /// First receiver at 0.5, the rest at 0.1.
    First05Rest01,
    /// First receiver at 0.9, the rest at 0.1.
    First09Rest01,
}

impl Figure5Config {
    /// All five curves, in the paper's legend order.
    pub const ALL: [Figure5Config; 5] = [
        Figure5Config::All01,
        Figure5Config::All05,
        Figure5Config::First05Rest01,
        Figure5Config::All09,
        Figure5Config::First09Rest01,
    ];

    /// The legend label used in the paper.
    pub fn label(self) -> &'static str {
        match self {
            Figure5Config::All01 => "All 0.1",
            Figure5Config::All05 => "All 0.5",
            Figure5Config::All09 => "All 0.9",
            Figure5Config::First05Rest01 => "1st .5 rest .1",
            Figure5Config::First09Rest01 => "1st .9 rest .1",
        }
    }

    /// Materialize the rate vector for `receivers` receivers.
    pub fn rates(self, receivers: usize) -> Vec<f64> {
        let (first, rest) = match self {
            Figure5Config::All01 => (0.1, 0.1),
            Figure5Config::All05 => (0.5, 0.5),
            Figure5Config::All09 => (0.9, 0.9),
            Figure5Config::First05Rest01 => (0.5, 0.1),
            Figure5Config::First09Rest01 => (0.9, 0.1),
        };
        (0..receivers)
            .map(|t| if t == 0 { first } else { rest })
            .collect()
    }

    /// The asymptotic redundancy bound `σ / max a_t` (σ = 1).
    pub fn asymptote(self) -> f64 {
        1.0 / self.rates(1)[0]
    }
}

/// One point of the Figure 5 sweep.
// mlf-lint: allow(unused-pub, reason = "reachable through public fn signatures and returned values; the ident-based usage scan cannot see type flow")
#[derive(Debug, Clone, PartialEq)]
pub struct Figure5Point {
    /// Number of receivers sharing the link (x-axis).
    pub receivers: usize,
    /// Analytic redundancy per configuration, ordered as
    /// [`Figure5Config::ALL`].
    pub redundancy: Vec<f64>,
}

/// Regenerate the Figure 5 series analytically for the given receiver
/// counts (the paper sweeps 1..=100 on a log axis).
pub fn figure5_series(receiver_counts: &[usize]) -> Vec<Figure5Point> {
    receiver_counts
        .iter()
        .map(|&r| Figure5Point {
            receivers: r,
            redundancy: Figure5Config::ALL
                .iter()
                .map(|c| analytic_redundancy(&c.rates(r), 1.0))
                .collect(),
        })
        .collect()
}

/// Monte-Carlo cross-validation of one Figure 5 point: simulate `quanta`
/// quanta of `sigma_packets` packets with uniformly random subsets and
/// measure the long-term redundancy. Rates are scaled by `sigma_packets`
/// and rounded to packet quotas, so choose `sigma_packets` to make the
/// rates integral (the Figure 5 configs are integral at multiples of 10).
pub fn monte_carlo_redundancy(
    config: Figure5Config,
    receivers: usize,
    sigma_packets: usize,
    quanta: usize,
    seed: u64,
) -> f64 {
    let quotas: Vec<usize> = config
        .rates(receivers)
        .iter()
        .map(|a| (a * sigma_packets as f64).round() as usize)
        .collect();
    long_term_redundancy(&quotas, sigma_packets, quanta, SelectionMode::Random, seed)
        // mlf-lint: allow(panic-unwrap, reason = "Figure 5 rate configs are strictly positive, so the scaled quotas are nonzero for any documented sigma_packets choice")
        .expect("nonzero quotas")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn redundancy_monotone_in_receivers() {
        for cfg in Figure5Config::ALL {
            let mut prev = 0.0;
            for r in [1, 2, 5, 10, 50, 100] {
                let red = analytic_redundancy(&cfg.rates(r), 1.0);
                assert!(red >= prev - 1e-12, "{}: not monotone", cfg.label());
                prev = red;
            }
        }
    }

    #[test]
    fn redundancy_bounded_by_asymptote() {
        for cfg in Figure5Config::ALL {
            let bound = cfg.asymptote();
            for r in [1, 10, 100, 1000] {
                let red = analytic_redundancy(&cfg.rates(r), 1.0);
                assert!(red <= bound + 1e-12, "{}: exceeds bound", cfg.label());
            }
            // And approaches it.
            let red = analytic_redundancy(&cfg.rates(2000), 1.0);
            assert!(
                red > 0.99 * bound,
                "{}: {red} vs bound {bound}",
                cfg.label()
            );
        }
    }

    #[test]
    fn single_receiver_is_efficient() {
        for cfg in Figure5Config::ALL {
            assert!((analytic_redundancy(&cfg.rates(1), 1.0) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn identical_rates_grow_fastest_at_fixed_efficient_rate() {
        // "All 0.5" vs "1st .5 rest .1": same efficient link rate (0.5),
        // but the uniform configuration is more redundant at every receiver
        // count > 1.
        for r in [2, 5, 20, 100] {
            let uniform = analytic_redundancy(&Figure5Config::All05.rates(r), 1.0);
            let skewed = analytic_redundancy(&Figure5Config::First05Rest01.rates(r), 1.0);
            assert!(uniform > skewed, "r={r}: {uniform} <= {skewed}");
        }
        for r in [2, 5, 20, 100] {
            let uniform = analytic_redundancy(&Figure5Config::All09.rates(r), 1.0);
            let skewed = analytic_redundancy(&Figure5Config::First09Rest01.rates(r), 1.0);
            assert!(uniform > skewed, "r={r}");
        }
    }

    #[test]
    fn figure5_series_shape() {
        let series = figure5_series(&[1, 10, 100]);
        assert_eq!(series.len(), 3);
        assert_eq!(series[0].redundancy.len(), 5);
        // All 0.1 at 100 receivers is close to its bound of 10.
        let all01_at_100 = series[2].redundancy[0];
        assert!(all01_at_100 > 9.9, "got {all01_at_100}");
        // All 0.9 saturates near 1/0.9 ≈ 1.111 almost immediately.
        let all09_at_10 = series[1].redundancy[3];
        assert!((all09_at_10 - 1.0 / 0.9).abs() < 0.01);
    }

    #[test]
    fn monte_carlo_agrees_with_closed_form() {
        // Spot-check three points with enough quanta for ~1% accuracy.
        for (cfg, r) in [
            (Figure5Config::All05, 4usize),
            (Figure5Config::All01, 10),
            (Figure5Config::First09Rest01, 5),
        ] {
            let analytic = analytic_redundancy(&cfg.rates(r), 1.0);
            let mc = monte_carlo_redundancy(cfg, r, 100, 300, 1234);
            assert!(
                (mc - analytic).abs() / analytic < 0.03,
                "{} r={r}: mc {mc} vs analytic {analytic}",
                cfg.label()
            );
        }
    }
}
