//! Quantum-based join/leave scheduling: achieving arbitrary long-term
//! average rates from a restricted layer set (Section 3).
//!
//! Time is divided into quanta of `Δt`; a layer transmitting at rate `σ`
//! carries `σΔt` packets per quantum. A receiver with fair packet rate
//! `a ≤ σ` joins the layer long enough to collect `a·Δt` packets each
//! quantum, then leaves. *Which* packets each receiver collects determines
//! the session's bandwidth use on shared links: a packet traverses a link
//! iff **some** downstream receiver takes it, so the session's packet count
//! on a link is the size of the union of the downstream receivers' packet
//! subsets.
//!
//! * [`prefix_subsets`] — the coordinated ideal: every receiver takes the
//!   *first* `a·Δt` packets, so subsets nest and the union equals the
//!   largest subset (redundancy exactly 1).
//! * [`random_subsets`] — no coordination: uniform random subsets, whose
//!   expected union size is the Appendix B formula (Figure 5's setting).
//! * [`rate_quota_schedule`] — fractional rates: alternating
//!   `⌊aΔt⌋`/`⌈aΔt⌉` quanta so the long-term average converges to `a`
//!   (footnote 7 of the paper).

use mlf_net::topology::SplitMix64;

/// Fisher–Yates shuffle driven by the workspace's deterministic generator
/// (the build ships no external `rand` dependency).
fn shuffle(indices: &mut [usize], rng: &mut SplitMix64) {
    for i in (1..indices.len()).rev() {
        let j = rng.below(i + 1);
        indices.swap(i, j);
    }
}

/// Packet subsets within one quantum: `subsets[r][p]` is whether receiver
/// `r` collects packet `p` of the `sigma_packets` transmitted.
// mlf-lint: allow(unused-pub, reason = "reachable through public fn signatures and returned values; the ident-based usage scan cannot see type flow")
pub type PacketSubsets = Vec<Vec<bool>>;

/// Coordinated (sender-aligned) packet choice: receiver `r` takes the first
/// `quotas[r]` packets of the quantum. Subsets nest, so the union is the
/// maximum quota and redundancy is 1.
///
/// # Panics
///
/// Panics if any quota exceeds `sigma_packets`.
pub fn prefix_subsets(quotas: &[usize], sigma_packets: usize) -> PacketSubsets {
    quotas
        .iter()
        .map(|&q| {
            assert!(q <= sigma_packets, "quota exceeds the layer rate");
            (0..sigma_packets).map(|p| p < q).collect()
        })
        .collect()
}

/// Uncoordinated packet choice: receiver `r` takes a uniformly random
/// `quotas[r]`-subset of the quantum's packets. Deterministic in `seed`.
pub fn random_subsets(quotas: &[usize], sigma_packets: usize, seed: u64) -> PacketSubsets {
    let mut rng = SplitMix64(seed.wrapping_add(0x5EED_0F42));
    let mut indices: Vec<usize> = (0..sigma_packets).collect();
    quotas
        .iter()
        .map(|&q| {
            assert!(q <= sigma_packets, "quota exceeds the layer rate");
            shuffle(&mut indices, &mut rng);
            let mut take = vec![false; sigma_packets];
            for &p in &indices[..q] {
                take[p] = true;
            }
            take
        })
        .collect()
}

/// The number of packets the session must carry on a link whose downstream
/// receivers hold these subsets: the size of the union.
pub fn union_size(subsets: &PacketSubsets) -> usize {
    if subsets.is_empty() {
        return 0;
    }
    let n = subsets[0].len();
    (0..n).filter(|&p| subsets.iter().any(|s| s[p])).count()
}

/// Measured redundancy of a set of subsets (Definition 3 at quantum
/// granularity): union size over the largest individual subset. `None` when
/// every subset is empty.
pub fn measured_redundancy(subsets: &PacketSubsets) -> Option<f64> {
    let max = subsets
        .iter()
        .map(|s| s.iter().filter(|&&b| b).count())
        .max()?;
    if max == 0 {
        return None;
    }
    Some(union_size(subsets) as f64 / max as f64)
}

/// Per-quantum packet quotas whose long-term average converges to the
/// (possibly fractional) target `rate_packets`: quantum `q` gets
/// `⌊(q+1)·a⌋ − ⌊q·a⌋` packets (the Bresenham / balanced-words schedule the
/// paper's footnote 7 sketches: "receive ⌊aΔt⌋ packets each quantum, and
/// periodically receive ⌈aΔt⌉").
pub fn rate_quota_schedule(rate_packets: f64, quanta: usize) -> Vec<usize> {
    assert!(rate_packets >= 0.0 && rate_packets.is_finite());
    (0..quanta)
        .map(|q| {
            let next = ((q as f64 + 1.0) * rate_packets).floor();
            let prev = (q as f64 * rate_packets).floor();
            (next - prev) as usize
        })
        .collect()
}

/// Long-run average of a quota schedule (packets per quantum).
pub fn schedule_average(quotas: &[usize]) -> f64 {
    if quotas.is_empty() {
        return 0.0;
    }
    quotas.iter().sum::<usize>() as f64 / quotas.len() as f64
}

/// Simulate `quanta` quanta of a single shared link: each quantum, receiver
/// `r` collects `quotas[r]` packets chosen by `mode`, and the link carries
/// the union. Returns the long-term redundancy
/// `(Σ union) / (max_r Σ quota_r)` — Definition 3 with long-term averages.
pub fn long_term_redundancy(
    quotas: &[usize],
    sigma_packets: usize,
    quanta: usize,
    mode: SelectionMode,
    seed: u64,
) -> Option<f64> {
    let mut carried = 0usize;
    let mut per_receiver = vec![0usize; quotas.len()];
    for q in 0..quanta {
        let subsets = match mode {
            SelectionMode::Prefix => prefix_subsets(quotas, sigma_packets),
            SelectionMode::Random => {
                random_subsets(quotas, sigma_packets, seed.wrapping_add(q as u64))
            }
        };
        carried += union_size(&subsets);
        for (r, s) in subsets.iter().enumerate() {
            per_receiver[r] += s.iter().filter(|&&b| b).count();
        }
    }
    let max = *per_receiver.iter().max()?;
    if max == 0 {
        return None;
    }
    Some(carried as f64 / max as f64)
}

/// How receivers pick their packets within a quantum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionMode {
    /// Coordinated: everyone takes the quantum's first packets.
    Prefix,
    /// Uncoordinated: uniform random subsets.
    Random,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_subsets_nest_and_are_efficient() {
        let subsets = prefix_subsets(&[3, 7, 5], 10);
        assert_eq!(union_size(&subsets), 7);
        assert_eq!(measured_redundancy(&subsets), Some(1.0));
    }

    #[test]
    fn random_subsets_have_right_sizes_and_more_redundancy() {
        let quotas = vec![5usize; 4];
        let subsets = random_subsets(&quotas, 50, 42);
        for s in &subsets {
            assert_eq!(s.iter().filter(|&&b| b).count(), 5);
        }
        let red = measured_redundancy(&subsets).unwrap();
        assert!(red >= 1.0);
        // With 4 receivers each taking 10% of 50 packets, collisions are
        // rare: expected union ≈ 50(1-0.9^4) ≈ 17 -> redundancy ≈ 3.4.
        assert!(red > 1.5, "got {red}");
    }

    #[test]
    fn random_subsets_are_deterministic_in_seed() {
        let a = random_subsets(&[3, 4], 20, 7);
        let b = random_subsets(&[3, 4], 20, 7);
        assert_eq!(a, b);
        let c = random_subsets(&[3, 4], 20, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn quota_schedule_converges_to_fractional_rates() {
        let quotas = rate_quota_schedule(2.5, 1000);
        assert!((schedule_average(&quotas) - 2.5).abs() < 1e-9);
        // Every quantum gets floor or ceil.
        assert!(quotas.iter().all(|&q| q == 2 || q == 3));
        // Irrational-ish rate.
        let quotas = rate_quota_schedule(1.0 / 3.0, 999);
        assert!((schedule_average(&quotas) - 1.0 / 3.0).abs() < 1e-3);
    }

    #[test]
    fn long_term_redundancy_prefix_is_one() {
        let red = long_term_redundancy(&[2, 5, 3], 10, 50, SelectionMode::Prefix, 1).unwrap();
        assert!((red - 1.0).abs() < 1e-12);
    }

    #[test]
    fn long_term_redundancy_random_matches_appendix_b() {
        // 3 receivers each taking half the packets of σ=20:
        // E[U] = 20(1 - 0.5^3) = 17.5, redundancy = 17.5/10 = 1.75.
        let red = long_term_redundancy(&[10, 10, 10], 20, 400, SelectionMode::Random, 99).unwrap();
        assert!((red - 1.75).abs() < 0.05, "got {red}");
    }

    #[test]
    fn empty_and_zero_cases() {
        assert_eq!(union_size(&vec![]), 0);
        assert_eq!(measured_redundancy(&prefix_subsets(&[0, 0], 5)), None);
        assert_eq!(
            long_term_redundancy(&[0], 5, 10, SelectionMode::Prefix, 0),
            None
        );
    }

    #[test]
    #[should_panic(expected = "quota exceeds")]
    fn quota_above_sigma_panics() {
        let _ = prefix_subsets(&[11], 10);
    }
}
