//! Property tests of the quantum join/leave machinery — the §3 invariants
//! that make "average rates equal fair rates" work.

use mlf_layering::quantum::{
    long_term_redundancy, measured_redundancy, prefix_subsets, random_subsets, rate_quota_schedule,
    schedule_average, union_size, SelectionMode,
};
use mlf_layering::randomjoin::analytic_redundancy;
use mlf_layering::LayerSchedule;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Prefix subsets always nest: the union equals the largest quota, so
    /// redundancy is exactly 1 whenever any quota is positive.
    #[test]
    fn prefix_subsets_are_exactly_efficient(
        quotas in proptest::collection::vec(0usize..50, 1..10),
        extra in 0usize..20,
    ) {
        let sigma = quotas.iter().copied().max().unwrap_or(0) + extra + 1;
        let subsets = prefix_subsets(&quotas, sigma);
        prop_assert_eq!(union_size(&subsets), *quotas.iter().max().unwrap());
        if quotas.iter().any(|&q| q > 0) {
            prop_assert_eq!(measured_redundancy(&subsets), Some(1.0));
        }
    }

    /// Random subsets have exactly the requested sizes, and the union is
    /// bounded between the max quota (can't do better) and the sum / sigma
    /// (can't do worse).
    #[test]
    fn random_subsets_respect_bounds(
        quotas in proptest::collection::vec(1usize..30, 1..8),
        seed in any::<u64>(),
    ) {
        let sigma = 64usize;
        let subsets = random_subsets(&quotas, sigma, seed);
        for (s, &q) in subsets.iter().zip(&quotas) {
            prop_assert_eq!(s.iter().filter(|&&b| b).count(), q);
        }
        let u = union_size(&subsets);
        let max = *quotas.iter().max().unwrap();
        let sum: usize = quotas.iter().sum();
        prop_assert!(u >= max);
        prop_assert!(u <= sum.min(sigma));
    }

    /// The Bresenham quota schedule is exact over its horizon: total
    /// packets = floor(quanta * rate), every quantum gets floor or ceil.
    #[test]
    fn quota_schedule_is_balanced(rate in 0.0f64..20.0, quanta in 1usize..500) {
        let quotas = rate_quota_schedule(rate, quanta);
        let total: usize = quotas.iter().sum();
        prop_assert_eq!(total as f64, (quanta as f64 * rate).floor());
        let (f, c) = (rate.floor() as usize, rate.ceil() as usize);
        prop_assert!(quotas.iter().all(|&q| q == f || q == c));
        // Long-run average within one packet of the target.
        prop_assert!((schedule_average(&quotas) - rate).abs() <= 1.0 / quanta as f64 + 1e-12);
    }

    /// Long-term random-join redundancy converges to the Appendix B closed
    /// form (loose statistical bound; the tight check lives in unit tests).
    #[test]
    fn long_term_redundancy_tracks_appendix_b(
        n_receivers in 2usize..6,
        tenth in 1usize..9,
        seed in any::<u64>(),
    ) {
        let sigma = 40usize;
        let quota = sigma * tenth / 10;
        let quotas = vec![quota; n_receivers];
        let measured = long_term_redundancy(&quotas, sigma, 150, SelectionMode::Random, seed)
            .expect("positive quotas");
        let rates = vec![quota as f64 / sigma as f64; n_receivers];
        let predicted = analytic_redundancy(&rates, 1.0);
        prop_assert!((measured - predicted).abs() / predicted < 0.15,
            "measured {measured}, predicted {predicted}");
    }

    /// Layer schedules: cumulative rates are strictly increasing and
    /// `level_for_rate` is the floor inverse of `cumulative_rate`.
    #[test]
    fn schedule_inverse_roundtrip(
        rates in proptest::collection::vec(0.1f64..10.0, 1..10),
        probe in 0.0f64..100.0,
    ) {
        let s = LayerSchedule::from_rates(rates);
        for w in s.cumulative_rates().windows(2) {
            prop_assert!(w[1] > w[0]);
        }
        let level = s.level_for_rate(probe);
        prop_assert!(s.cumulative_rate(level) <= probe + 1e-9);
        if level < s.layer_count() {
            prop_assert!(s.cumulative_rate(level + 1) > probe);
        }
    }
}
