//! The allocator must reproduce the paper's example figures *exactly*:
//! the receiver rates, the session link rates, the full-utilization pattern,
//! and the property violations the prose walks through.

use mlf_core::allocator::{Allocator, Hybrid};
use mlf_core::linkrate::{LinkRateConfig, LinkRateModel};
use mlf_core::properties;
use mlf_core::redundancy;
use mlf_net::paper;
use mlf_net::{LinkId, ReceiverId, SessionId};

fn assert_alloc(alloc: &mlf_core::Allocation, expected: &[Vec<f64>]) {
    for (i, exp) in expected.iter().enumerate() {
        for (k, &e) in exp.iter().enumerate() {
            let got = alloc.rate(ReceiverId::new(i, k));
            assert!(
                (got - e).abs() < 1e-9,
                "r{},{}: expected {e}, got {got}",
                i + 1,
                k + 1
            );
        }
    }
}

#[test]
fn figure1_rates_and_link_rates() {
    let ex = paper::figure1();
    let net = &ex.network;
    let alloc = Hybrid::as_declared().allocate(net);
    assert_alloc(&alloc, &ex.expected_rates);

    let cfg = LinkRateConfig::efficient(net.session_count());
    // The four session link-rate triples of the figure:
    // l1: (1:2:0), l2: (0:0:2), l3: (0:2:2), l4: (1:1:1).
    let triples: Vec<Vec<f64>> = (0..4)
        .map(|j| {
            (0..3)
                .map(|i| alloc.session_link_rate(net, &cfg, LinkId(j), SessionId(i)))
                .collect()
        })
        .collect();
    assert_eq!(triples[0], vec![1.0, 2.0, 0.0]);
    assert_eq!(triples[1], vec![0.0, 0.0, 2.0]);
    assert_eq!(triples[2], vec![0.0, 2.0, 2.0]);
    assert_eq!(triples[3], vec![1.0, 1.0, 1.0]);

    // l3 is fully utilized and on r2,2's path with r2,2 maximal there.
    assert!(alloc.is_fully_utilized(net, &cfg, LinkId(2)));
    assert!(net.crosses(ReceiverId::new(1, 1), LinkId(2)));

    // The whole allocation satisfies all four properties (Theorem 1 demo;
    // the single-rate member S1 is unicast so the theorem's multi-rate
    // requirements are vacuous for it).
    let report = properties::check_all(net, &cfg, &alloc);
    assert!(report.all_hold(), "{report:?}");
}

#[test]
fn figure2_single_rate_fails_three_properties() {
    let ex = paper::figure2();
    let net = &ex.network;
    let alloc = Hybrid::as_declared().allocate(net);
    assert_alloc(&alloc, &ex.expected_rates);

    let cfg = LinkRateConfig::efficient(net.session_count());
    // Session link-rate pairs: l1 (2:3), l2 (2:0), l3 (2:0), l4 (2:3).
    let pairs: Vec<Vec<f64>> = (0..4)
        .map(|j| {
            (0..2)
                .map(|i| alloc.session_link_rate(net, &cfg, LinkId(j), SessionId(i)))
                .collect()
        })
        .collect();
    assert_eq!(pairs[0], vec![2.0, 3.0]);
    assert_eq!(pairs[1], vec![2.0, 0.0]);
    assert_eq!(pairs[2], vec![2.0, 0.0]);
    assert_eq!(pairs[3], vec![2.0, 3.0]);

    let report = properties::check_all(net, &cfg, &alloc);
    // Same-path fails for (r1,1, r2,1).
    assert_eq!(
        report.same_path_violations,
        vec![(ReceiverId::new(0, 0), ReceiverId::new(1, 0))]
    );
    // Fully-utilized-receiver-fairness fails for r1,3 (and r1,1: l1 is full
    // but r2,1 receives more across it).
    assert!(report
        .fully_utilized_violations
        .contains(&ReceiverId::new(0, 2)));
    // Per-receiver-link fails for S1 (witnessed by r1,1 and r1,3).
    assert!(report
        .per_receiver_link_violations
        .contains(&ReceiverId::new(0, 0)));
    assert!(report
        .per_receiver_link_violations
        .contains(&ReceiverId::new(0, 2)));
    // Per-session-link holds for everyone (the one survivor).
    assert!(report.per_session_link_fair());
    assert_eq!(report.count_holding(), 1);
}

#[test]
fn figure2_multi_rate_replacement_restores_all_properties() {
    let ex = paper::figure2_multi_rate();
    let net = &ex.network;
    let alloc = Hybrid::as_declared().allocate(net);
    assert_alloc(&alloc, &ex.expected_rates);
    let cfg = LinkRateConfig::efficient(net.session_count());
    let report = properties::check_all(net, &cfg, &alloc);
    assert!(report.all_hold(), "{report:?}");
}

#[test]
fn figure2_lemma3_ordering_between_variants() {
    // The multi-rate replacement must be weakly more max-min fair.
    let single = paper::figure2();
    let multi = paper::figure2_multi_rate();
    let a = Hybrid::as_declared()
        .allocate(&single.network)
        .ordered_vector();
    let b = Hybrid::as_declared()
        .allocate(&multi.network)
        .ordered_vector();
    assert!(mlf_core::is_min_unfavorable(&a, &b));
    // Strictly, here: (2,2,2,3) <m (2,2,2.5,2.5).
    assert!(mlf_core::is_strictly_min_unfavorable(&a, &b));
}

#[test]
fn figure3a_removal_decreases_a_sibling() {
    let ex = paper::figure3a();
    let before = Hybrid::as_declared().allocate(&ex.network);
    assert_alloc(&before, &ex.before);
    let after_net = ex.network.without_receiver(ex.removed).unwrap();
    let after = Hybrid::as_declared().allocate(&after_net);
    assert_alloc(&after, &ex.after);
    // The headline: r3,1 *decreased* (3 -> 2) while r1,1 rose (7 -> 8).
    assert!(after.rate(ReceiverId::new(2, 0)) < before.rate(ReceiverId::new(2, 0)));
    assert!(after.rate(ReceiverId::new(0, 0)) > before.rate(ReceiverId::new(0, 0)));
}

#[test]
fn figure3b_removal_increases_a_sibling() {
    let ex = paper::figure3b();
    let before = Hybrid::as_declared().allocate(&ex.network);
    assert_alloc(&before, &ex.before);
    let after_net = ex.network.without_receiver(ex.removed).unwrap();
    let after = Hybrid::as_declared().allocate(&after_net);
    assert_alloc(&after, &ex.after);
    // The headline: r3,1 *increased* (7 -> 8) while r1,1 fell (3 -> 2).
    assert!(after.rate(ReceiverId::new(2, 0)) > before.rate(ReceiverId::new(2, 0)));
    assert!(after.rate(ReceiverId::new(0, 0)) < before.rate(ReceiverId::new(0, 0)));
}

#[test]
fn figure4_redundancy_breaks_session_perspective_fairness() {
    let ex = paper::figure4();
    let net = &ex.network;
    // S1 redundancy 2 on shared links.
    let cfg = LinkRateConfig::efficient(2).with_session(0, LinkRateModel::Scaled(2.0));
    let alloc = Hybrid::as_declared().with_config(cfg.clone()).allocate(net);
    assert_alloc(&alloc, &ex.expected_rates);

    // u_{1,4} = 4, u_{2,4} = 2, l4 (index 3) fully utilized.
    assert_eq!(
        alloc.session_link_rate(net, &cfg, LinkId(3), SessionId(0)),
        4.0
    );
    assert_eq!(
        alloc.session_link_rate(net, &cfg, LinkId(3), SessionId(1)),
        2.0
    );
    assert!(alloc.is_fully_utilized(net, &cfg, LinkId(3)));
    assert_eq!(
        redundancy(net, &cfg, &alloc, LinkId(3), SessionId(0)),
        Some(2.0)
    );

    let report = properties::check_all(net, &cfg, &alloc);
    // Session-perspective properties fail for S2...
    assert_eq!(report.per_session_link_violations, vec![SessionId(1)]);
    assert!(report
        .per_receiver_link_violations
        .contains(&ReceiverId::new(1, 0)));
    // ...but the receiver-perspective properties survive (the paper calls
    // this out as trivial: they do not compare session link rates).
    assert!(report.fully_utilized_receiver_fair(), "{report:?}");
    assert!(report.same_path_receiver_fair());
}

#[test]
fn figure4_efficient_counterfactual() {
    let ex = paper::figure4();
    let alloc = Hybrid::as_declared().allocate(&ex.network);
    assert_alloc(&alloc, &paper::figure4_efficient_rates());
    let cfg = LinkRateConfig::efficient(2);
    let report = properties::check_all(&ex.network, &cfg, &alloc);
    assert!(report.all_hold(), "{report:?}");
}

#[test]
fn figure4_lemma4_ordering() {
    // Redundancy 2 must yield a weakly less max-min-fair allocation than
    // efficient, and redundancy 3 weaker still.
    let ex = paper::figure4();
    let eff = LinkRateConfig::efficient(2);
    let red2 = LinkRateConfig::efficient(2).with_session(0, LinkRateModel::Scaled(2.0));
    let red3 = LinkRateConfig::efficient(2).with_session(0, LinkRateModel::Scaled(3.0));
    assert!(mlf_core::theory::check_lemma4(&ex.network, &eff, &red2));
    assert!(mlf_core::theory::check_lemma4(&ex.network, &red2, &red3));
}
