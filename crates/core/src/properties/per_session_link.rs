//! Fairness Property 4: *per-session-link-fairness*.
//!
//! An allocation is per-session-link-fair for session `S_i` if every
//! receiver of `S_i` is at `κ_i`, or there exists a fully utilized link
//! `l_j` in `S_i`'s data-path where `u_{i',j} ≤ u_{i,j}` for all other
//! sessions. This is the weakest of the four properties — the session needs
//! a fair share on at least *one* link of its data-path (equivalently, on at
//! least one receiver's path), not on every receiver's path.
//!
//! It is the only property a single-rate max-min fair allocation always
//! satisfies (a consequence of the Tzeng–Siu results, Section 2.3), and the
//! property that *redundancy* destroys first: in Figure 4, `u_{1,4} = 4 >
//! u_{2,4} = 2` on the only full link of `S2`'s data-path.

use crate::allocation::{Allocation, RATE_EPS};
use crate::linkrate::LinkRateConfig;
use crate::properties::per_receiver_link::SessionLinkRates;
use mlf_net::{LinkId, Network, SessionId};

/// Return the sessions violating per-session-link-fairness. Empty result ⇒
/// Property 4 holds network-wide.
pub fn check_per_session_link_fair(
    net: &Network,
    cfg: &LinkRateConfig,
    alloc: &Allocation,
) -> Vec<SessionId> {
    let full: Vec<bool> = (0..net.link_count())
        .map(|j| alloc.is_fully_utilized(net, cfg, LinkId(j)))
        .collect();
    let u = SessionLinkRates::new(net, cfg, alloc);
    let mut violations = Vec::new();
    for i in 0..net.session_count() {
        let sid = SessionId(i);
        if !session_ok(net, cfg, alloc, &full, &u, sid) {
            violations.push(sid);
        }
    }
    violations
}

fn session_ok(
    net: &Network,
    _cfg: &LinkRateConfig,
    alloc: &Allocation,
    full: &[bool],
    u: &SessionLinkRates,
    sid: SessionId,
) -> bool {
    let session = net.session(sid);
    let all_capped = (0..session.receivers.len())
        .all(|k| alloc.rate(mlf_net::ReceiverId::new(sid.0, k)) >= session.max_rate - RATE_EPS);
    if all_capped {
        return true;
    }
    let path = net.session_data_path(sid);
    (0..net.link_count()).any(|j| {
        path[j] && full[j] && {
            let mine = u.get(LinkId(j), sid);
            (0..net.session_count())
                .filter(|&i| SessionId(i) != sid)
                .all(|i| u.get(LinkId(j), SessionId(i)) <= mine + RATE_EPS)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linkrate::LinkRateModel;
    use mlf_net::{Graph, Session};

    /// Figure-4-shaped network: shared first hop + three tails for S1's
    /// receivers, unicast S2 sharing the first tail.
    fn fig4_like() -> Network {
        let mut g = Graph::new();
        let n = g.add_nodes(5);
        g.add_link(n[1], n[2], 5.0).unwrap(); // l1
        g.add_link(n[1], n[3], 2.0).unwrap(); // l2
        g.add_link(n[1], n[4], 3.0).unwrap(); // l3
        g.add_link(n[0], n[1], 6.0).unwrap(); // l4 shared
        Network::new(
            g,
            vec![
                Session::multi_rate(n[0], vec![n[2], n[3], n[4]]).with_max_rate(100.0),
                Session::unicast(n[0], n[2]).with_max_rate(100.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn redundancy_breaks_property4_for_the_competing_session() {
        let net = fig4_like();
        let cfg = LinkRateConfig::efficient(2).with_session(0, LinkRateModel::Scaled(2.0));
        // The redundant max-min allocation: everyone at 2.
        let alloc = Allocation::from_rates(vec![vec![2.0, 2.0, 2.0], vec![2.0]]);
        let v = check_per_session_link_fair(&net, &cfg, &alloc);
        // S2's only full link is l4 where u_{2,4}=2 < u_{1,4}=4.
        assert_eq!(v, vec![SessionId(1)]);
    }

    #[test]
    fn efficient_allocation_satisfies_property4() {
        let net = fig4_like();
        let cfg = LinkRateConfig::efficient(2);
        // Efficient max-min: (3, 2, 3; 3): l4 carries 3+3=6 full, equal
        // shares.
        let alloc = Allocation::from_rates(vec![vec![3.0, 2.0, 3.0], vec![3.0]]);
        assert!(check_per_session_link_fair(&net, &cfg, &alloc).is_empty());
    }

    #[test]
    fn all_capped_session_passes_vacuously() {
        let mut g = Graph::new();
        let n = g.add_nodes(2);
        g.add_link(n[0], n[1], 10.0).unwrap();
        let net = Network::new(g, vec![Session::unicast(n[0], n[1]).with_max_rate(1.0)]).unwrap();
        let cfg = LinkRateConfig::efficient(1);
        let alloc = Allocation::from_rates(vec![vec![1.0]]);
        assert!(check_per_session_link_fair(&net, &cfg, &alloc).is_empty());
    }

    #[test]
    fn session_with_no_fair_full_link_fails() {
        let net = fig4_like();
        let cfg = LinkRateConfig::efficient(2);
        // Nothing full at all.
        let alloc = Allocation::from_rates(vec![vec![0.5, 0.5, 0.5], vec![0.5]]);
        assert_eq!(check_per_session_link_fair(&net, &cfg, &alloc).len(), 2);
    }
}
