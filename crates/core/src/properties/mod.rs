//! The four desirable fairness properties of Section 2.1 as executable
//! checkers.
//!
//! | Property | Perspective | Checker |
//! |----------|-------------|---------|
//! | 1. fully-utilized-receiver-fairness | receiver | [`fully_utilized`] |
//! | 2. same-path-receiver-fairness      | receiver | [`same_path`] |
//! | 3. per-receiver-link-fairness       | session  | [`per_receiver_link`] |
//! | 4. per-session-link-fairness        | session  | [`per_session_link`] |
//!
//! For a *unicast* network, Properties 1, 3 and 4 all collapse to Unicast
//! Fairness Property 1 and Property 2 to Unicast Fairness Property 2 (the
//! paper notes this in Section 2.2); the integration tests verify the
//! collapse. Theorem 1 asserts all four hold in a multi-rate max-min fair
//! allocation; Section 2.3's Figure 2 shows a single-rate max-min allocation
//! violating 1, 2 and 3 while still satisfying 4; Section 3's Figure 4 shows
//! redundancy breaking 3 and 4 while 1 and 2 survive.

pub mod fully_utilized;
pub mod per_receiver_link;
pub mod per_session_link;
pub mod same_path;

pub use fully_utilized::check_fully_utilized_receiver_fair;
pub use per_receiver_link::check_per_receiver_link_fair;
pub use per_session_link::check_per_session_link_fair;
pub(crate) use same_path::check_same_path_receiver_fair;

use crate::allocation::Allocation;
use crate::linkrate::LinkRateConfig;
use mlf_net::{Network, ReceiverId, SessionId};

/// Outcome of checking all four fairness properties on an allocation.
#[derive(Debug, Clone, Default)]
pub struct FairnessReport {
    /// Receivers violating fully-utilized-receiver-fairness (Property 1).
    pub fully_utilized_violations: Vec<ReceiverId>,
    /// Same-data-path receiver pairs with unequal, un-capped rates
    /// (Property 2).
    pub same_path_violations: Vec<(ReceiverId, ReceiverId)>,
    /// `(session, receiver)` pairs violating per-receiver-link-fairness
    /// (Property 3).
    pub per_receiver_link_violations: Vec<ReceiverId>,
    /// Sessions violating per-session-link-fairness (Property 4).
    pub per_session_link_violations: Vec<SessionId>,
}

impl FairnessReport {
    /// Whether Property 1 holds network-wide.
    pub fn fully_utilized_receiver_fair(&self) -> bool {
        self.fully_utilized_violations.is_empty()
    }

    /// Whether Property 2 holds network-wide.
    pub fn same_path_receiver_fair(&self) -> bool {
        self.same_path_violations.is_empty()
    }

    /// Whether Property 3 holds network-wide.
    pub fn per_receiver_link_fair(&self) -> bool {
        self.per_receiver_link_violations.is_empty()
    }

    /// Whether Property 4 holds network-wide.
    pub fn per_session_link_fair(&self) -> bool {
        self.per_session_link_violations.is_empty()
    }

    /// Whether all four properties hold.
    pub fn all_hold(&self) -> bool {
        self.fully_utilized_receiver_fair()
            && self.same_path_receiver_fair()
            && self.per_receiver_link_fair()
            && self.per_session_link_fair()
    }

    /// Number of properties (out of four) that hold.
    pub fn count_holding(&self) -> usize {
        [
            self.fully_utilized_receiver_fair(),
            self.same_path_receiver_fair(),
            self.per_receiver_link_fair(),
            self.per_session_link_fair(),
        ]
        .iter()
        .filter(|&&b| b)
        .count()
    }
}

/// Check all four fairness properties of an allocation at once.
pub fn check_all(net: &Network, cfg: &LinkRateConfig, alloc: &Allocation) -> FairnessReport {
    FairnessReport {
        fully_utilized_violations: check_fully_utilized_receiver_fair(net, cfg, alloc),
        same_path_violations: check_same_path_receiver_fair(net, alloc),
        per_receiver_link_violations: check_per_receiver_link_fair(net, cfg, alloc),
        per_session_link_violations: check_per_session_link_fair(net, cfg, alloc),
    }
}

/// Unicast Fairness Property 1 (Section 2.1) on an all-unicast network:
/// each session is at `κ_i` or has a fully utilized link on its path where
/// its rate is the largest among crossing receivers. Delegates to the
/// multicast Property 1 checker, to which it is equivalent for unicast.
pub fn check_unicast_property1(
    net: &Network,
    cfg: &LinkRateConfig,
    alloc: &Allocation,
) -> Vec<ReceiverId> {
    debug_assert!(net.sessions().iter().all(|s| s.is_unicast()));
    check_fully_utilized_receiver_fair(net, cfg, alloc)
}

/// Unicast Fairness Property 2 on an all-unicast network (same-path
/// fairness), equivalent to the multicast Property 2 checker.
// mlf-lint: allow(unused-pub, reason = "intentional API surface kept public alongside its siblings")
pub fn check_unicast_property2(net: &Network, alloc: &Allocation) -> Vec<(ReceiverId, ReceiverId)> {
    debug_assert!(net.sessions().iter().all(|s| s.is_unicast()));
    check_same_path_receiver_fair(net, alloc)
}
