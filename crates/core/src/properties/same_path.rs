//! Fairness Property 2: *same-path-receiver-fairness*.
//!
//! Two receivers `r_{i,k}` and `r_{i',k'}` whose data-paths traverse the
//! same set of links (`r_{i,k} ∈ R_j ⟺ r_{i',k'} ∈ R_j`) are same-path-
//! receiver-fair if their rates are equal, unless one of them is pinned at
//! its session's maximum desired rate *below* the other
//! (`a_{i,k} = κ_i < a_{i',k'}` or symmetrically).
//!
//! The paper highlights this as the property TCP-fairness implies: a unicast
//! TCP flow and a multicast receiver sharing its exact path should see the
//! same throughput. Figure 2 shows a single-rate max-min allocation breaking
//! it (`r_{1,1}` at 2 vs `r_{2,1}` at 3 on the identical path).

use crate::allocation::{Allocation, RATE_EPS};
use mlf_net::{Network, ReceiverId};

/// Return all unordered receiver pairs with identical data-paths whose rates
/// violate same-path-receiver-fairness. Empty result ⇒ Property 2 holds.
pub(crate) fn check_same_path_receiver_fair(
    net: &Network,
    alloc: &Allocation,
) -> Vec<(ReceiverId, ReceiverId)> {
    let receivers: Vec<ReceiverId> = net.receivers().collect();
    let mut violations = Vec::new();
    for (idx, &a) in receivers.iter().enumerate() {
        for &b in &receivers[idx + 1..] {
            if !net.same_data_path(a, b) {
                continue;
            }
            if !pair_is_fair(net, alloc, a, b) {
                violations.push((a, b));
            }
        }
    }
    violations
}

/// Whether one specific same-path pair satisfies Property 2. Callers must
/// ensure the pair really shares a data-path.
pub(crate) fn pair_is_fair(
    net: &Network,
    alloc: &Allocation,
    a: ReceiverId,
    b: ReceiverId,
) -> bool {
    let ra = alloc.rate(a);
    let rb = alloc.rate(b);
    if (ra - rb).abs() <= RATE_EPS {
        return true;
    }
    let ka = net.session(a.session).max_rate;
    let kb = net.session(b.session).max_rate;
    // a capped below b, or b capped below a.
    (ra >= ka - RATE_EPS && ra < rb) || (rb >= kb - RATE_EPS && rb < ra)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlf_net::{Graph, Session};

    /// Two unicast sessions over the identical two-hop path.
    fn twin_path_net(max0: f64, max1: f64) -> Network {
        let mut g = Graph::new();
        let n = g.add_nodes(3);
        g.add_link(n[0], n[1], 10.0).unwrap();
        g.add_link(n[1], n[2], 10.0).unwrap();
        Network::new(
            g,
            vec![
                Session::unicast(n[0], n[2]).with_max_rate(max0),
                Session::unicast(n[0], n[2]).with_max_rate(max1),
            ],
        )
        .unwrap()
    }

    #[test]
    fn equal_rates_are_fair() {
        let net = twin_path_net(100.0, 100.0);
        let alloc = Allocation::from_rates(vec![vec![5.0], vec![5.0]]);
        assert!(check_same_path_receiver_fair(&net, &alloc).is_empty());
    }

    #[test]
    fn unequal_rates_without_cap_are_flagged() {
        let net = twin_path_net(100.0, 100.0);
        let alloc = Allocation::from_rates(vec![vec![2.0], vec![3.0]]);
        let v = check_same_path_receiver_fair(&net, &alloc);
        assert_eq!(v, vec![(ReceiverId::new(0, 0), ReceiverId::new(1, 0))]);
    }

    #[test]
    fn kappa_pinned_receiver_may_lag() {
        // Session 0 capped at 2: (2, 8) is fair because a = κ < a'.
        let net = twin_path_net(2.0, 100.0);
        let alloc = Allocation::from_rates(vec![vec![2.0], vec![8.0]]);
        assert!(check_same_path_receiver_fair(&net, &alloc).is_empty());
        // But the *capped* receiver must be the smaller one.
        let alloc = Allocation::from_rates(vec![vec![2.0], vec![1.0]]);
        assert_eq!(check_same_path_receiver_fair(&net, &alloc).len(), 1);
    }

    #[test]
    fn different_paths_are_never_compared() {
        let mut g = Graph::new();
        let n = g.add_nodes(3);
        g.add_link(n[0], n[1], 10.0).unwrap();
        g.add_link(n[0], n[2], 10.0).unwrap();
        let net = Network::new(
            g,
            vec![Session::unicast(n[0], n[1]), Session::unicast(n[0], n[2])],
        )
        .unwrap();
        let alloc = Allocation::from_rates(vec![vec![1.0], vec![9.0]]);
        assert!(check_same_path_receiver_fair(&net, &alloc).is_empty());
    }

    #[test]
    fn same_session_multi_rate_receivers_can_violate() {
        // Contrived: two receivers of one multi-rate session reaching the
        // same node set via identical links cannot exist (distinct nodes),
        // but receivers of different sessions at the same node can. Pair a
        // multicast receiver with a unicast one.
        let mut g = Graph::new();
        let n = g.add_nodes(3);
        g.add_link(n[0], n[1], 10.0).unwrap();
        g.add_link(n[1], n[2], 10.0).unwrap();
        let net = Network::new(
            g,
            vec![
                Session::multi_rate(n[0], vec![n[2], n[1]]),
                Session::unicast(n[0], n[2]),
            ],
        )
        .unwrap();
        // r1,1 (path l0 l1) and r2,1 (path l0 l1) share a path; r1,2 (l0) no.
        let alloc = Allocation::from_rates(vec![vec![4.0, 9.0], vec![6.0]]);
        let v = check_same_path_receiver_fair(&net, &alloc);
        assert_eq!(v, vec![(ReceiverId::new(0, 0), ReceiverId::new(1, 0))]);
    }
}
