//! Fairness Property 3: *per-receiver-link-fairness*.
//!
//! A session `S_i`'s allocation is per-receiver-link-fair if for each of its
//! receivers `r_{i,k}` either (1) `a_{i,k} = κ_i`, or (2) some link `l_j` on
//! the receiver's data-path is fully utilized and `u_{i',j} ≤ u_{i,j}` for
//! all other sessions `S_{i'}`. The session must get a "fair share" of link
//! rate along *every* sender-to-receiver path — the session-perspective
//! strengthening of Property 1.
//!
//! Figure 2 violates it twice for `S1`: no link on `r_{1,3}`'s path is full,
//! and on `r_{1,1}`'s path only `l_1` is full where `u_{1,1} = 2 < u_{2,1} =
//! 3`. Figure 4 shows redundancy (not just single-rate coupling) breaking it.

use crate::allocation::{Allocation, RATE_EPS};
use crate::linkrate::LinkRateConfig;
use mlf_net::{LinkId, Network, ReceiverId, SessionId};

/// Return the receivers witnessing per-receiver-link-fairness violations
/// (the property is per-session; a session violates it iff any of its
/// receivers is returned). Empty result ⇒ Property 3 holds network-wide.
pub fn check_per_receiver_link_fair(
    net: &Network,
    cfg: &LinkRateConfig,
    alloc: &Allocation,
) -> Vec<ReceiverId> {
    let full: Vec<bool> = (0..net.link_count())
        .map(|j| alloc.is_fully_utilized(net, cfg, LinkId(j)))
        .collect();
    // Session link rates are reused across receivers; precompute lazily per
    // (link, session) pair.
    let u = SessionLinkRates::new(net, cfg, alloc);
    let mut violations = Vec::new();
    for r in net.receivers() {
        if !receiver_ok(net, alloc, &full, &u, r) {
            violations.push(r);
        }
    }
    violations
}

fn receiver_ok(
    net: &Network,
    alloc: &Allocation,
    full: &[bool],
    u: &SessionLinkRates,
    r: ReceiverId,
) -> bool {
    if alloc.rate(r) >= net.session(r.session).max_rate - RATE_EPS {
        return true;
    }
    net.route(r).iter().any(|&l| {
        full[l.0] && {
            let mine = u.get(l, r.session);
            (0..net.session_count())
                .filter(|&i| SessionId(i) != r.session)
                .all(|i| u.get(l, SessionId(i)) <= mine + RATE_EPS)
        }
    })
}

/// Cached `u_{i,j}` table.
pub(crate) struct SessionLinkRates {
    table: Vec<Vec<f64>>, // [link][session]
}

impl SessionLinkRates {
    pub(crate) fn new(net: &Network, cfg: &LinkRateConfig, alloc: &Allocation) -> Self {
        let table = (0..net.link_count())
            .map(|j| {
                (0..net.session_count())
                    .map(|i| alloc.session_link_rate(net, cfg, LinkId(j), SessionId(i)))
                    .collect()
            })
            .collect();
        SessionLinkRates { table }
    }

    pub(crate) fn get(&self, link: LinkId, session: SessionId) -> f64 {
        self.table[link.0][session.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlf_net::{Graph, Session};

    /// Shared link (cap 5) carrying a 2-receiver multicast and a unicast,
    /// plus private tails.
    fn net() -> Network {
        let mut g = Graph::new();
        let n = g.add_nodes(4);
        g.add_link(n[0], n[1], 5.0).unwrap(); // shared
        g.add_link(n[1], n[2], 100.0).unwrap();
        g.add_link(n[1], n[3], 100.0).unwrap();
        Network::new(
            g,
            vec![
                Session::multi_rate(n[0], vec![n[2], n[3]]),
                Session::unicast(n[0], n[2]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn fair_split_passes() {
        let net = net();
        let cfg = LinkRateConfig::efficient(2);
        // u_1 = max(2.5, 2.5) = 2.5, u_2 = 2.5, shared link full.
        let alloc = Allocation::from_rates(vec![vec![2.5, 2.5], vec![2.5]]);
        assert!(check_per_receiver_link_fair(&net, &cfg, &alloc).is_empty());
    }

    #[test]
    fn session_with_smaller_share_on_its_only_full_link_fails() {
        let net = net();
        let cfg = LinkRateConfig::efficient(2);
        // Session 0 squeezed to 1 while the unicast takes 4.
        let alloc = Allocation::from_rates(vec![vec![1.0, 1.0], vec![4.0]]);
        let v = check_per_receiver_link_fair(&net, &cfg, &alloc);
        assert_eq!(v, vec![ReceiverId::new(0, 0), ReceiverId::new(0, 1)]);
    }

    #[test]
    fn no_full_link_on_path_fails() {
        let net = net();
        let cfg = LinkRateConfig::efficient(2);
        let alloc = Allocation::from_rates(vec![vec![1.0, 1.0], vec![1.0]]);
        assert_eq!(check_per_receiver_link_fair(&net, &cfg, &alloc).len(), 3);
    }

    #[test]
    fn kappa_capped_receivers_pass_without_full_links() {
        let mut g = Graph::new();
        let n = g.add_nodes(2);
        g.add_link(n[0], n[1], 10.0).unwrap();
        let netk = Network::new(g, vec![Session::unicast(n[0], n[1]).with_max_rate(2.0)]).unwrap();
        let cfg = LinkRateConfig::efficient(1);
        let alloc = Allocation::from_rates(vec![vec![2.0]]);
        assert!(check_per_receiver_link_fair(&netk, &cfg, &alloc).is_empty());
    }
}
