//! Fairness Property 1: *fully-utilized-receiver-fairness*.
//!
//! A receiver's rate `a_{i,k}` is fully-utilized-receiver-fair if either
//! `a_{i,k} = κ_i`, or there is at least one fully utilized link `l_j` with
//! `r_{i,k} ∈ R_{i,j}` and `a_{i',k'} ≤ a_{i,k}` for all receivers
//! `r_{i',k'} ∈ R_j`. This is the multicast extension of the unicast
//! max-min property's "no stealing": the receiver's rate cannot be raised
//! without using a saturated link on which it is already a maximal receiver.

use crate::allocation::{Allocation, RATE_EPS};
use crate::linkrate::LinkRateConfig;
use mlf_net::{LinkId, Network, ReceiverId};

/// Return the receivers whose rates are *not* fully-utilized-receiver-fair.
/// An empty result means the allocation has Property 1 network-wide.
pub fn check_fully_utilized_receiver_fair(
    net: &Network,
    cfg: &LinkRateConfig,
    alloc: &Allocation,
) -> Vec<ReceiverId> {
    // Precompute full-utilization per link once.
    let full: Vec<bool> = (0..net.link_count())
        .map(|j| alloc.is_fully_utilized(net, cfg, LinkId(j)))
        .collect();
    let mut violations = Vec::new();
    for r in net.receivers() {
        if !receiver_is_fair(net, alloc, &full, r) {
            violations.push(r);
        }
    }
    violations
}

fn receiver_is_fair(net: &Network, alloc: &Allocation, full: &[bool], r: ReceiverId) -> bool {
    let a = alloc.rate(r);
    let kappa = net.session(r.session).max_rate;
    if a >= kappa - RATE_EPS {
        return true;
    }
    net.route(r).iter().any(|&l| {
        full[l.0]
            && net
                .receivers_on_link(l)
                .all(|other| alloc.rate(other) <= a + RATE_EPS)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linkrate::LinkRateConfig;
    use mlf_net::{Graph, Session};

    /// Two unicasts over one shared link of capacity 4.
    fn shared_link_net() -> Network {
        let mut g = Graph::new();
        let n = g.add_nodes(2);
        g.add_link(n[0], n[1], 4.0).unwrap();
        Network::new(
            g,
            vec![Session::unicast(n[0], n[1]), Session::unicast(n[0], n[1])],
        )
        .unwrap()
    }

    #[test]
    fn equal_split_is_fair() {
        let net = shared_link_net();
        let cfg = LinkRateConfig::efficient(2);
        let alloc = Allocation::from_rates(vec![vec![2.0], vec![2.0]]);
        assert!(check_fully_utilized_receiver_fair(&net, &cfg, &alloc).is_empty());
    }

    #[test]
    fn starved_receiver_is_flagged() {
        let net = shared_link_net();
        let cfg = LinkRateConfig::efficient(2);
        // Link full but receiver 0 is below receiver 1: receiver 0 has no
        // full link where it is maximal.
        let alloc = Allocation::from_rates(vec![vec![1.0], vec![3.0]]);
        let v = check_fully_utilized_receiver_fair(&net, &cfg, &alloc);
        assert_eq!(v, vec![ReceiverId::new(0, 0)]);
    }

    #[test]
    fn underutilized_link_is_flagged_for_everyone() {
        let net = shared_link_net();
        let cfg = LinkRateConfig::efficient(2);
        let alloc = Allocation::from_rates(vec![vec![1.0], vec![1.0]]);
        let v = check_fully_utilized_receiver_fair(&net, &cfg, &alloc);
        assert_eq!(v.len(), 2, "nobody has a saturated bottleneck");
    }

    #[test]
    fn kappa_capped_receiver_is_fair_without_a_full_link() {
        let mut g = Graph::new();
        let n = g.add_nodes(2);
        g.add_link(n[0], n[1], 4.0).unwrap();
        let net = Network::new(g, vec![Session::unicast(n[0], n[1]).with_max_rate(1.0)]).unwrap();
        let cfg = LinkRateConfig::efficient(1);
        let alloc = Allocation::from_rates(vec![vec![1.0]]);
        assert!(check_fully_utilized_receiver_fair(&net, &cfg, &alloc).is_empty());
    }
}
