//! Scalar fairness metrics for comparing allocations.
//!
//! The paper's comparisons are structural (the four properties, the
//! `≤ₘ` ordering). Its related-work discussion, however, contrasts that
//! with scalar metrics used by contemporaries: *receiver satisfaction*
//! (Legout–Nonnenmacher–Biersack argue bandwidth should scale with receiver
//! count because it raises average satisfaction) and *inter-receiver
//! fairness* (Jiang–Ammar–Zegura). This module provides those scalars so
//! the examples and ablations can report them next to the paper's
//! structural verdicts:
//!
//! * [`jain_index`] — Jain's classic fairness index `((Σx)² / (n·Σx²))`,
//!   1 for perfectly equal rates;
//! * [`satisfaction`] — mean over receivers of `a_{i,k} / isolated_{i,k}`,
//!   where the *isolated rate* is what the receiver would get if its
//!   session were alone in the network (its path bottleneck capped by κ);
//! * [`min_max_spread`] — the min/max rate ratio, a quick dispersion check.

use crate::allocation::Allocation;
use mlf_net::Network;

/// Jain's fairness index of the receiver-rate vector. Returns 1.0 for the
/// empty or all-zero allocation (vacuously fair).
pub fn jain_index(alloc: &Allocation) -> f64 {
    let rates: Vec<f64> = alloc.rates().iter().flatten().copied().collect();
    let n = rates.len();
    if n == 0 {
        return 1.0;
    }
    let sum: f64 = rates.iter().sum();
    let sum_sq: f64 = rates.iter().map(|x| x * x).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (n as f64 * sum_sq)
}

/// The isolated rate of each receiver: the minimum capacity along its
/// data-path, capped by its session's κ — what it would receive were its
/// session alone in the network (shaped `[session][receiver]`).
pub(crate) fn isolated_rates(net: &Network) -> Vec<Vec<f64>> {
    net.sessions()
        .iter()
        .enumerate()
        .map(|(i, s)| {
            (0..s.receivers.len())
                .map(|k| {
                    let r = mlf_net::ReceiverId::new(i, k);
                    let bottleneck = net
                        .route(r)
                        .iter()
                        .map(|&l| net.graph().capacity(l))
                        .fold(f64::INFINITY, f64::min);
                    bottleneck.min(s.max_rate)
                })
                .collect()
        })
        .collect()
}

/// Mean receiver satisfaction: `mean(a_{i,k} / isolated_{i,k})` over all
/// receivers. 1.0 means every receiver does as well as it would alone.
pub fn satisfaction(net: &Network, alloc: &Allocation) -> f64 {
    let iso = isolated_rates(net);
    let mut total = 0.0;
    let mut count = 0usize;
    for (r, a) in alloc.iter() {
        let denom = iso[r.session.0][r.index];
        if denom > 0.0 && denom.is_finite() {
            total += a / denom;
            count += 1;
        }
    }
    if count == 0 {
        1.0
    } else {
        total / count as f64
    }
}

/// The ratio of the smallest to the largest receiver rate (1.0 when all
/// equal; 0 when someone is starved). Returns 1.0 for empty allocations.
// mlf-lint: allow(unused-pub, reason = "documented public API; doc examples and links are invisible to the analyzer")
pub fn min_max_spread(alloc: &Allocation) -> f64 {
    let rates: Vec<f64> = alloc.rates().iter().flatten().copied().collect();
    let max = rates.iter().copied().fold(0.0_f64, f64::max);
    if rates.is_empty() || max == 0.0 {
        return 1.0;
    }
    let min = rates.iter().copied().fold(f64::INFINITY, f64::min);
    min / max
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocator::{Allocator, MultiRate, SingleRate};
    use mlf_net::{Graph, Session};

    #[test]
    fn jain_index_extremes() {
        assert_eq!(
            jain_index(&Allocation::from_rates(vec![vec![2.0, 2.0, 2.0]])),
            1.0
        );
        let skew = jain_index(&Allocation::from_rates(vec![vec![1.0, 0.0, 0.0]]));
        assert!((skew - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(jain_index(&Allocation::from_rates(vec![vec![]])), 1.0);
        assert_eq!(jain_index(&Allocation::from_rates(vec![vec![0.0]])), 1.0);
    }

    /// Heterogeneous star: multi-rate beats single-rate on both scalar
    /// metrics, matching the paper's structural verdict.
    #[test]
    fn multi_rate_raises_satisfaction_and_jain() {
        let mut g = Graph::new();
        let (src, hub) = (g.add_node(), g.add_node());
        g.add_link(src, hub, 100.0).unwrap();
        let mut leaves = Vec::new();
        for cap in [1.0, 4.0, 16.0] {
            let v = g.add_node();
            g.add_link(hub, v, cap).unwrap();
            leaves.push(v);
        }
        let net = Graph::clone(&g); // keep g for reuse clarity
        let net = mlf_net::Network::new(net, vec![Session::multi_rate(src, leaves)]).unwrap();

        let multi = MultiRate::new().allocate(&net);
        let single = SingleRate::new().allocate(&net);
        assert!(satisfaction(&net, &multi) > satisfaction(&net, &single));
        // Single-rate pins everyone to 1 -> Jain 1.0 (equal but starved);
        // satisfaction tells the truth where Jain cannot.
        assert_eq!(jain_index(&single), 1.0);
        assert!(
            (satisfaction(&net, &multi) - 1.0).abs() < 1e-9,
            "alone in the network, multi-rate receivers reach their bottlenecks"
        );
        assert!(satisfaction(&net, &single) < 0.5);
        assert!(min_max_spread(&multi) < 1.0);
        assert_eq!(min_max_spread(&single), 1.0);
    }

    /// Regression: a non-finite rate leaking out of an upstream model must
    /// flow through the metrics path (ordered vector, Jain, spread) without
    /// panicking — the old `partial_cmp(..).expect("finite")` sorts brought
    /// the whole sweep down on the first NaN.
    #[test]
    fn non_finite_rates_do_not_panic_the_metrics_path() {
        let alloc = Allocation::from_rates(vec![vec![1.0, f64::NAN], vec![f64::INFINITY, 2.0]]);
        let ordered = alloc.ordered_vector();
        assert_eq!(ordered.len(), 4);
        // total_cmp's order: finite values ascending, +inf, then NaN last.
        assert_eq!(ordered[0], 1.0);
        assert_eq!(ordered[1], 2.0);
        assert_eq!(ordered[2], f64::INFINITY);
        assert!(ordered[3].is_nan());
        // Scalar metrics propagate or absorb the NaN instead of panicking:
        // the min/max folds skip NaN, so spread = min / max = 1.0 / inf.
        assert!(jain_index(&alloc).is_nan());
        assert_eq!(min_max_spread(&alloc), 0.0);
        // The Definition 2 ordering helper tolerates NaNs too.
        let v = crate::ordering::ordered(&[f64::NAN, 0.5]);
        assert_eq!(v[0], 0.5);
        assert!(v[1].is_nan());
        // The Definition 2 comparison path accepts NaN-carrying vectors
        // (ordered() puts NaN last and the sortedness debug-assert uses the
        // same total_cmp order) and stays deterministic: a NaN coordinate
        // is an epsilon-tie — `(NaN - b).abs() > ORD_EPS` is false — so the
        // comparison never panics and never flips between runs.
        use std::cmp::Ordering;
        let with_nan = crate::ordering::ordered(&[f64::NAN, 1.0]);
        let finite = crate::ordering::ordered(&[2.0, 1.0]);
        let fwd = crate::ordering::min_unfavorable_cmp(&with_nan, &finite);
        let rev = crate::ordering::min_unfavorable_cmp(&finite, &with_nan);
        assert_eq!(fwd, rev.reverse(), "comparison must stay antisymmetric");
        assert_eq!(fwd, Ordering::Equal, "a NaN coordinate is an epsilon-tie");
        assert_eq!(
            crate::ordering::min_unfavorable_cmp(&with_nan, &with_nan),
            Ordering::Equal,
            "NaN vectors must compare equal to themselves"
        );
        assert!(!crate::ordering::is_strictly_min_unfavorable(
            &with_nan, &with_nan
        ));
    }

    #[test]
    fn isolated_rates_respect_kappa_and_bottlenecks() {
        let mut g = Graph::new();
        let n = g.add_nodes(3);
        g.add_link(n[0], n[1], 5.0).unwrap();
        g.add_link(n[1], n[2], 3.0).unwrap();
        let net = mlf_net::Network::new(
            g,
            vec![
                Session::unicast(n[0], n[2]).with_max_rate(2.0),
                Session::unicast(n[0], n[2]),
            ],
        )
        .unwrap();
        let iso = isolated_rates(&net);
        assert_eq!(iso[0], vec![2.0], "kappa caps");
        assert_eq!(iso[1], vec![3.0], "path bottleneck");
    }
}
