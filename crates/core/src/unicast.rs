//! Classic unicast max-min fairness (Bertsekas & Gallager, *Data Networks*):
//! an independent implementation used to cross-check the general allocator.
//!
//! The textbook algorithm treats every receiver as an independent flow along
//! its route and repeats: compute each unsaturated link's equal share of its
//! remaining capacity among its unfrozen flows; the minimum such share (or a
//! flow's remaining `κ` headroom) sets the next increment; flows on the
//! binding links (or at `κ`) freeze. This is exactly progressive filling
//! specialised to unicast, implemented here from the textbook description
//! with none of the general allocator's machinery, so agreement between the
//! two on all-unicast networks is a meaningful differential test.
//!
//! The preferred entry point is [`crate::allocator::Unicast`] through the
//! [`crate::allocator::Allocator`] trait; the [`unicast_max_min`] free
//! function remains as a deprecated shim.

use crate::allocation::Allocation;
use crate::allocator::SolverWorkspace;
use crate::maxmin::{FreezeReason, MaxMinSolution};
use mlf_net::{LinkId, Network};

/// Compute the unicast max-min fair allocation of a network in which every
/// session is unicast.
///
/// # Panics
///
/// Panics if any session has more than one receiver — this baseline is
/// deliberately unicast-only.
#[deprecated(
    since = "0.2.0",
    note = "use `allocator::Unicast::new()` via the `Allocator` trait"
)]
pub fn unicast_max_min(net: &Network) -> Allocation {
    unicast_solve_in(net, &mut SolverWorkspace::new()).allocation
}

/// Textbook water-filling into a caller-provided workspace: the engine
/// behind [`crate::allocator::Unicast`]. Flow `i` occupies the workspace's
/// `[i][0]` slots (one receiver per session by definition).
#[allow(clippy::needless_range_loop)] // parallel per-flow tables
pub(crate) fn unicast_solve_in(net: &Network, ws: &mut SolverWorkspace) -> MaxMinSolution {
    assert!(
        net.sessions().iter().all(|s| s.is_unicast()),
        "unicast_max_min requires an all-unicast network"
    );
    ws.reset(net);
    let m = net.session_count();
    let route = |i: usize| net.route(mlf_net::ReceiverId::new(i, 0));
    let kappa = |i: usize| net.sessions()[i].max_rate;

    // ws.link_used[j]: bandwidth consumed by frozen flows on link j.
    // ws.link_active[j]: count of active flows crossing link j, maintained
    // by the freeze bookkeeping (one receiver per session, so the
    // workspace's per-link active-receiver counter *is* the flow count —
    // integers, hence trivially identical to the reference's rescans).
    // ws.active[i][0]: flow i still rising. ws.rates[i][0]: its rate.
    let mut iterations = 0usize;
    loop {
        if ws.active_total == 0 {
            break;
        }
        iterations += 1;
        assert!(iterations <= m + 1, "no convergence");
        // Common increment level: all active flows currently share one rate
        // (they all started at zero and have risen together), so the binding
        // link share is (c_j - used_j) / #active flows on j, offset by the
        // current common rate.
        #[cfg(debug_assertions)]
        if let Some(first) = (0..m).find(|&i| ws.active[i][0]) {
            let current = ws.rates[first][0];
            debug_assert!((0..m)
                .filter(|&i| ws.active[i][0])
                .all(|i| (ws.rates[i][0] - current).abs() < 1e-12));
        }

        let mut next = f64::INFINITY;
        // κ events.
        for i in 0..m {
            if ws.active[i][0] {
                next = next.min(kappa(i));
            }
        }
        // Link saturation events.
        for j in 0..net.link_count() {
            let on = ws.link_active[j];
            if on == 0 {
                continue;
            }
            // mlf-lint: allow(as-float-cast, reason = "flow counts are bounded by the receiver population, far below 2^53, so the cast is exact")
            let share = (net.graph().capacity(LinkId(j)) - ws.link_used[j]) / on as f64;
            next = next.min(share);
        }
        debug_assert!(next.is_finite());

        // Raise everyone, then determine the binding links *before* any
        // bookkeeping mutation (freezing one flow must not shift the share
        // seen by the next flow in the same round).
        for i in 0..m {
            if ws.active[i][0] {
                ws.rates[i][0] = next.min(kappa(i));
            }
        }
        for j in 0..net.link_count() {
            let on = ws.link_active[j];
            ws.link_flag[j] = if on == 0 {
                false
            } else {
                // mlf-lint: allow(as-float-cast, reason = "flow counts are bounded by the receiver population, far below 2^53, so the cast is exact")
                let share = (net.graph().capacity(LinkId(j)) - ws.link_used[j]) / on as f64;
                share <= next + 1e-12
            };
        }
        let mut froze = false;
        for i in 0..m {
            if !ws.active[i][0] {
                continue;
            }
            let at_kappa = ws.rates[i][0] >= kappa(i) - 1e-12;
            let binding_link = route(i).iter().copied().find(|l| ws.link_flag[l.0]);
            let reason = if at_kappa {
                Some(FreezeReason::MaxRate)
            } else {
                binding_link.map(FreezeReason::Link)
            };
            if let Some(reason) = reason {
                ws.active[i][0] = false;
                ws.reasons[i][0] = Some(reason);
                froze = true;
                for &l in route(i) {
                    ws.link_used[l.0] += ws.rates[i][0];
                }
                ws.note_freeze(i, 0);
            }
        }
        assert!(froze, "unicast water-filling must freeze a flow per round");
    }
    ws.take_solution(iterations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocator::{Allocator, Hybrid, Unicast};
    use crate::linkrate::LinkRateConfig;
    use mlf_net::topology::{random_tree, SplitMix64};
    use mlf_net::{Graph, NodeId, ReceiverId, Session};

    #[test]
    fn textbook_example_three_flows() {
        // Classic: flows A->C (via both links), A->B, B->C on a 2-link
        // chain with capacities 10 and 6: long flow and short flows split.
        //   l0: A-B cap 10, l1: B-C cap 6.
        // Flows: f1 A->C, f2 A->B, f3 B->C.
        // Water-fill: l1 share = 6/2 = 3 freezes f1, f3 at 3.
        // l0: remaining 10-3=7 for f2 -> 7.
        let mut g = Graph::new();
        let n = g.add_nodes(3);
        g.add_link(n[0], n[1], 10.0).unwrap();
        g.add_link(n[1], n[2], 6.0).unwrap();
        let net = Network::new(
            g,
            vec![
                Session::unicast(n[0], n[2]),
                Session::unicast(n[0], n[1]),
                Session::unicast(n[1], n[2]),
            ],
        )
        .unwrap();
        let sol = Unicast::new().solve(&net, &mut SolverWorkspace::new());
        assert_eq!(sol.allocation.rates(), &[vec![3.0], vec![7.0], vec![3.0]]);
        // The long flow froze on the thin link; the fat-link flow on l0.
        assert_eq!(
            sol.reason(ReceiverId::new(0, 0)),
            FreezeReason::Link(LinkId(1))
        );
        assert_eq!(
            sol.reason(ReceiverId::new(1, 0)),
            FreezeReason::Link(LinkId(0))
        );
    }

    #[test]
    fn respects_kappa() {
        let mut g = Graph::new();
        let n = g.add_nodes(2);
        g.add_link(n[0], n[1], 10.0).unwrap();
        let net = Network::new(
            g,
            vec![
                Session::unicast(n[0], n[1]).with_max_rate(2.0),
                Session::unicast(n[0], n[1]),
            ],
        )
        .unwrap();
        let sol = Unicast::new().solve(&net, &mut SolverWorkspace::new());
        assert_eq!(sol.allocation.rates(), &[vec![2.0], vec![8.0]]);
        assert_eq!(sol.reason(ReceiverId::new(0, 0)), FreezeReason::MaxRate);
    }

    #[test]
    #[should_panic(expected = "all-unicast")]
    fn rejects_multicast_sessions() {
        let mut g = Graph::new();
        let n = g.add_nodes(3);
        g.add_link(n[0], n[1], 1.0).unwrap();
        g.add_link(n[0], n[2], 1.0).unwrap();
        let net = Network::new(g, vec![Session::multi_rate(n[0], vec![n[1], n[2]])]).unwrap();
        let _ = Unicast::new().allocate(&net);
    }

    #[test]
    fn agrees_with_general_allocator_on_random_unicast_networks() {
        // Differential test: textbook unicast water-filling vs the general
        // progressive-filling allocator on all-unicast random trees, both
        // running through one shared workspace.
        let mut rng = SplitMix64(0xC0FFEE);
        let mut ws = SolverWorkspace::new();
        for seed in 0..40u64 {
            let g = random_tree(seed, 10, 1.0, 8.0);
            let nodes = g.node_count();
            let mut sessions = Vec::new();
            for s in 0..4 {
                let from = NodeId((seed as usize + s) % nodes);
                let mut to = NodeId(rng.below(nodes));
                if to == from {
                    to = NodeId((to.0 + 1) % nodes);
                }
                sessions.push(Session::unicast(from, to));
            }
            let net = Network::new(g, sessions).unwrap();
            let a = Unicast::new().solve(&net, &mut ws).allocation;
            let b = Hybrid::as_declared().solve(&net, &mut ws).allocation;
            for (ra, rb) in a.rates().iter().zip(b.rates()) {
                for (x, y) in ra.iter().zip(rb) {
                    assert!((x - y).abs() < 1e-9, "seed {seed}: {x} vs {y}");
                }
            }
            // And the result is feasible under the efficient model.
            let cfg = LinkRateConfig::efficient(net.session_count());
            assert!(a.is_feasible(&net, &cfg));
        }
    }

    #[test]
    fn legacy_shim_matches_the_trait() {
        let mut g = Graph::new();
        let n = g.add_nodes(3);
        g.add_link(n[0], n[1], 10.0).unwrap();
        g.add_link(n[1], n[2], 6.0).unwrap();
        let net = Network::new(
            g,
            vec![Session::unicast(n[0], n[2]), Session::unicast(n[0], n[1])],
        )
        .unwrap();
        #[allow(deprecated)]
        let legacy = unicast_max_min(&net);
        assert_eq!(legacy.rates(), Unicast::new().allocate(&net).rates());
    }
}
