//! Classic unicast max-min fairness (Bertsekas & Gallager, *Data Networks*):
//! an independent implementation used to cross-check the general allocator.
//!
//! The textbook algorithm treats every receiver as an independent flow along
//! its route and repeats: compute each unsaturated link's equal share of its
//! remaining capacity among its unfrozen flows; the minimum such share (or a
//! flow's remaining `κ` headroom) sets the next increment; flows on the
//! binding links (or at `κ`) freeze. This is exactly progressive filling
//! specialised to unicast, implemented here from the textbook description
//! with none of the general allocator's machinery, so agreement between the
//! two on all-unicast networks is a meaningful differential test.

use crate::allocation::Allocation;
use mlf_net::{LinkId, Network};

/// Compute the unicast max-min fair allocation of a network in which every
/// session is unicast.
///
/// # Panics
///
/// Panics if any session has more than one receiver — this baseline is
/// deliberately unicast-only.
#[allow(clippy::needless_range_loop)] // parallel arrays indexed by flow id
pub fn unicast_max_min(net: &Network) -> Allocation {
    assert!(
        net.sessions().iter().all(|s| s.is_unicast()),
        "unicast_max_min requires an all-unicast network"
    );
    let m = net.session_count();
    // Flow i follows route of receiver (i, 0) with cap κ_i.
    let routes: Vec<&[LinkId]> = (0..m)
        .map(|i| net.route(mlf_net::ReceiverId::new(i, 0)))
        .collect();
    let kappa: Vec<f64> = net.sessions().iter().map(|s| s.max_rate).collect();

    let mut rate = vec![0.0_f64; m];
    let mut frozen = vec![false; m];
    let mut used = vec![0.0_f64; net.link_count()]; // bandwidth used by frozen flows
    loop {
        let active: Vec<usize> = (0..m).filter(|&i| !frozen[i]).collect();
        if active.is_empty() {
            break;
        }
        // Common increment level: all active flows currently share one rate
        // (they all started at zero and have risen together), so the binding
        // link share is (c_j - used_j) / #active flows on j, offset by the
        // current common rate.
        let current = rate[active[0]];
        debug_assert!(active.iter().all(|&i| (rate[i] - current).abs() < 1e-12));

        let mut next = f64::INFINITY;
        // κ events.
        for &i in &active {
            next = next.min(kappa[i]);
        }
        // Link saturation events.
        for j in 0..net.link_count() {
            let link = LinkId(j);
            let n_active = active
                .iter()
                .filter(|&&i| routes[i].contains(&link))
                .count();
            if n_active == 0 {
                continue;
            }
            let share = (net.graph().capacity(link) - used[j]) / n_active as f64;
            next = next.min(share);
        }
        debug_assert!(next.is_finite() && next >= current - 1e-12);

        // Raise everyone, then determine the binding links *before* any
        // bookkeeping mutation (freezing one flow must not shift the share
        // seen by the next flow in the same round).
        let mut froze = false;
        for &i in &active {
            rate[i] = next.min(kappa[i]);
        }
        let binding: Vec<bool> = (0..net.link_count())
            .map(|j| {
                let link = LinkId(j);
                let n_active = active
                    .iter()
                    .filter(|&&x| routes[x].contains(&link))
                    .count();
                if n_active == 0 {
                    return false;
                }
                let share = (net.graph().capacity(link) - used[j]) / n_active as f64;
                share <= next + 1e-12
            })
            .collect();
        for &i in &active {
            let at_kappa = rate[i] >= kappa[i] - 1e-12;
            let at_link = routes[i].iter().any(|&l| binding[l.0]);
            if at_kappa || at_link {
                frozen[i] = true;
                froze = true;
                for &l in routes[i] {
                    used[l.0] += rate[i];
                }
            }
        }
        assert!(froze, "unicast water-filling must freeze a flow per round");
    }
    Allocation::from_rates(rate.into_iter().map(|a| vec![a]).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linkrate::LinkRateConfig;
    use crate::maxmin::max_min_allocation;
    use mlf_net::topology::{random_tree, SplitMix64};
    use mlf_net::{Graph, NodeId, Session};

    #[test]
    fn textbook_example_three_flows() {
        // Classic: flows A->C (via both links), A->B, B->C on a 2-link
        // chain with capacities 10 and 6: long flow and short flows split.
        //   l0: A-B cap 10, l1: B-C cap 6.
        // Flows: f1 A->C, f2 A->B, f3 B->C.
        // Water-fill: l1 share = 6/2 = 3 freezes f1, f3 at 3.
        // l0: remaining 10-3=7 for f2 -> 7.
        let mut g = Graph::new();
        let n = g.add_nodes(3);
        g.add_link(n[0], n[1], 10.0).unwrap();
        g.add_link(n[1], n[2], 6.0).unwrap();
        let net = Network::new(
            g,
            vec![
                Session::unicast(n[0], n[2]),
                Session::unicast(n[0], n[1]),
                Session::unicast(n[1], n[2]),
            ],
        )
        .unwrap();
        let alloc = unicast_max_min(&net);
        assert_eq!(alloc.rates(), &[vec![3.0], vec![7.0], vec![3.0]]);
    }

    #[test]
    fn respects_kappa() {
        let mut g = Graph::new();
        let n = g.add_nodes(2);
        g.add_link(n[0], n[1], 10.0).unwrap();
        let net = Network::new(
            g,
            vec![
                Session::unicast(n[0], n[1]).with_max_rate(2.0),
                Session::unicast(n[0], n[1]),
            ],
        )
        .unwrap();
        let alloc = unicast_max_min(&net);
        assert_eq!(alloc.rates(), &[vec![2.0], vec![8.0]]);
    }

    #[test]
    #[should_panic(expected = "all-unicast")]
    fn rejects_multicast_sessions() {
        let mut g = Graph::new();
        let n = g.add_nodes(3);
        g.add_link(n[0], n[1], 1.0).unwrap();
        g.add_link(n[0], n[2], 1.0).unwrap();
        let net = Network::new(g, vec![Session::multi_rate(n[0], vec![n[1], n[2]])]).unwrap();
        let _ = unicast_max_min(&net);
    }

    #[test]
    fn agrees_with_general_allocator_on_random_unicast_networks() {
        // Differential test: textbook unicast water-filling vs the general
        // progressive-filling allocator on all-unicast random trees.
        let mut rng = SplitMix64(0xC0FFEE);
        for seed in 0..40u64 {
            let g = random_tree(seed, 10, 1.0, 8.0);
            let nodes = g.node_count();
            let mut sessions = Vec::new();
            for s in 0..4 {
                let from = NodeId((seed as usize + s) % nodes);
                let mut to = NodeId(rng.below(nodes));
                if to == from {
                    to = NodeId((to.0 + 1) % nodes);
                }
                sessions.push(Session::unicast(from, to));
            }
            let net = Network::new(g, sessions).unwrap();
            let a = unicast_max_min(&net);
            let b = max_min_allocation(&net);
            for (ra, rb) in a.rates().iter().zip(b.rates()) {
                for (x, y) in ra.iter().zip(rb) {
                    assert!((x - y).abs() < 1e-9, "seed {seed}: {x} vs {y}");
                }
            }
            // And the result is feasible under the efficient model.
            let cfg = LinkRateConfig::efficient(net.session_count());
            assert!(a.is_feasible(&net, &cfg));
        }
    }
}
