//! Session link-rate ("redundancy") functions `v_i`.
//!
//! Section 2 of the paper assumes the *efficient* session link rate
//! `u_{i,j} = max{a_{i,k} : r_{i,k} ∈ R_{i,j}}` — the theoretical minimum
//! bandwidth a layered session needs on a link to serve the receivers
//! downstream of it. Section 3 generalizes a session to carry a
//! *redundancy function* `v_i` mapping the set of downstream receiver rates
//! to the session's actual link rate, with `v_i(X) ≥ max X` required
//! (every byte a receiver gets must traverse its data-path).
//!
//! [`LinkRateModel`] provides the paper's models:
//!
//! * [`LinkRateModel::Efficient`] — `v(X) = max X` (redundancy 1, the §2
//!   assumption, achievable with perfectly coordinated joins/leaves);
//! * [`LinkRateModel::Scaled`] — `v(X) = r · max X` on links shared by two
//!   or more of the session's receivers (redundancy `r`, the knob of
//!   Lemma 4 / Figures 4 and 6). Single-receiver links stay efficient:
//!   redundancy is by definition excess caused by imperfectly-overlapping
//!   *sets* of received packets, which takes at least two receivers;
//! * [`LinkRateModel::Sum`] — `v(X) = Σ X`, the degenerate worst case in
//!   which the session behaves like independent unicasts (no sharing at
//!   all, e.g. the "distinct unicast connections" sessions of Tzeng & Siu);
//! * [`LinkRateModel::RandomJoin`] — the Appendix B closed form
//!   `v(X) = σ(1 − ∏_t(1 − a_t/σ))` for receivers that pick their
//!   `a_t·Δt` packets uniformly at random from a layer of rate `σ`
//!   (completely uncoordinated joins).

/// A session link-rate function `v_i`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkRateModel {
    /// `u = max X`: perfectly coordinated (redundancy 1).
    Efficient,
    /// `u = factor · max X` when at least two receivers share the link,
    /// `max X` otherwise. Requires `factor ≥ 1`.
    Scaled(f64),
    /// `u = Σ X`: independent unicasts, the maximal redundancy.
    Sum,
    /// `u = σ (1 − ∏ (1 − a_t/σ))`: uniform random packet choice out of a
    /// single layer of aggregate rate `σ` (Appendix B). Receiver rates are
    /// clamped to `σ`, matching the model's requirement `a_t ≤ σ`.
    RandomJoin {
        /// The layer transmission rate `σ > 0`.
        sigma: f64,
    },
}

impl LinkRateModel {
    /// Evaluate `v_i` on the set of downstream receiver rates.
    ///
    /// Returns 0 for the empty set (the session does not use the link).
    /// All models satisfy the paper's requirement `v(X) ≥ max X` (for
    /// `RandomJoin` this holds because rates are clamped to `σ` and
    /// `σ(1 − ∏(1 − a_t/σ)) ≥ σ·(a_max/σ) = a_max`).
    pub fn link_rate(&self, rates: &[f64]) -> f64 {
        if rates.is_empty() {
            return 0.0;
        }
        let max = rates.iter().copied().fold(0.0_f64, f64::max);
        match *self {
            LinkRateModel::Efficient => max,
            LinkRateModel::Scaled(factor) => {
                debug_assert!(factor >= 1.0, "redundancy factor must be >= 1");
                if rates.len() >= 2 {
                    factor * max
                } else {
                    max
                }
            }
            LinkRateModel::Sum => rates.iter().sum(),
            LinkRateModel::RandomJoin { sigma } => {
                debug_assert!(sigma > 0.0, "layer rate must be positive");
                let mut miss_all = 1.0;
                for &a in rates {
                    let a = a.min(sigma).max(0.0);
                    miss_all *= 1.0 - a / sigma;
                }
                sigma * (1.0 - miss_all)
            }
        }
    }

    /// The redundancy `v(X) / max X` this model exhibits on a link with the
    /// given downstream rates (Definition 3). Returns 1 for empty/zero sets.
    pub fn redundancy(&self, rates: &[f64]) -> f64 {
        let max = rates.iter().copied().fold(0.0_f64, f64::max);
        if max <= 0.0 {
            return 1.0;
        }
        self.link_rate(rates) / max
    }

    /// Whether the model is linear in a uniform scaling of the *active*
    /// water-filling level (true for `Efficient`, `Scaled`, `Sum`). The
    /// allocator uses an exact piecewise-linear solver for linear models and
    /// falls back to bisection otherwise.
    pub(crate) fn is_piecewise_linear(&self) -> bool {
        !matches!(self, LinkRateModel::RandomJoin { .. })
    }

    /// Whether this model dominates `other` pointwise (`v(X) ≥ v'(X)` for
    /// all rate sets) — the premise of Lemma 4. Conservative: returns `true`
    /// only for pairs we can prove.
    // mlf-lint: allow(unused-pub, reason = "documented public API; doc examples and links are invisible to the analyzer")
    pub fn dominates(&self, other: &LinkRateModel) -> bool {
        use LinkRateModel::*;
        match (self, other) {
            (a, b) if a == b => true,
            (_, Efficient) => true, // every valid v dominates max
            (Scaled(a), Scaled(b)) => a >= b,
            (Sum, Scaled(_)) | (Sum, RandomJoin { .. }) => false, // not in general
            _ => false,
        }
    }
}

/// Per-session link-rate configuration for a network of `m` sessions.
///
/// The paper's Section 2 results assume every session is efficient;
/// Section 3 mixes efficient and redundant sessions (e.g. Figure 6's
/// `m` redundant out of `n` total sessions).
#[derive(Debug, Clone, PartialEq)]
pub struct LinkRateConfig {
    models: Vec<LinkRateModel>,
}

impl LinkRateConfig {
    /// All sessions efficient (the Section 2 assumption).
    pub fn efficient(session_count: usize) -> Self {
        LinkRateConfig {
            models: vec![LinkRateModel::Efficient; session_count],
        }
    }

    /// The same model for every session.
    pub fn uniform(session_count: usize, model: LinkRateModel) -> Self {
        LinkRateConfig {
            models: vec![model; session_count],
        }
    }

    /// Explicit per-session models.
    // mlf-lint: allow(unused-pub, reason = "intentional API surface kept public alongside its siblings")
    pub fn per_session(models: Vec<LinkRateModel>) -> Self {
        LinkRateConfig { models }
    }

    /// Builder-style override of a single session's model.
    pub fn with_session(mut self, session: usize, model: LinkRateModel) -> Self {
        self.models[session] = model;
        self
    }

    /// The model for session `i`.
    pub fn model(&self, session: usize) -> &LinkRateModel {
        &self.models[session]
    }

    /// Number of sessions configured.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether no sessions are configured.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// Whether every session is piecewise-linear (enables the exact solver).
    pub(crate) fn all_piecewise_linear(&self) -> bool {
        self.models.iter().all(|m| m.is_piecewise_linear())
    }

    /// Whether `self` dominates `other` sessionwise (Lemma 4 premise).
    // mlf-lint: allow(unused-pub, reason = "documented public API; doc examples and links are invisible to the analyzer")
    pub fn dominates(&self, other: &LinkRateConfig) -> bool {
        self.len() == other.len()
            && self
                .models
                .iter()
                .zip(&other.models)
                .all(|(a, b)| a.dominates(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn efficient_is_max() {
        let m = LinkRateModel::Efficient;
        assert_eq!(m.link_rate(&[1.0, 3.0, 2.0]), 3.0);
        assert_eq!(m.link_rate(&[]), 0.0);
        assert_eq!(m.link_rate(&[5.0]), 5.0);
    }

    #[test]
    fn scaled_applies_only_to_shared_links() {
        let m = LinkRateModel::Scaled(2.0);
        assert_eq!(m.link_rate(&[2.0]), 2.0, "single receiver stays efficient");
        assert_eq!(m.link_rate(&[2.0, 1.0]), 4.0);
        assert_eq!(m.redundancy(&[2.0, 1.0]), 2.0);
        assert_eq!(m.redundancy(&[2.0]), 1.0);
    }

    #[test]
    fn sum_is_total() {
        let m = LinkRateModel::Sum;
        assert_eq!(m.link_rate(&[1.0, 2.0, 3.0]), 6.0);
        assert_eq!(m.redundancy(&[1.0, 2.0, 3.0]), 2.0);
    }

    #[test]
    fn random_join_matches_appendix_b() {
        let m = LinkRateModel::RandomJoin { sigma: 1.0 };
        // Two receivers at a/σ = 0.5: u = 1 - 0.25 = 0.75.
        assert!((m.link_rate(&[0.5, 0.5]) - 0.75).abs() < EPS);
        // Redundancy = 0.75 / 0.5 = 1.5.
        assert!((m.redundancy(&[0.5, 0.5]) - 1.5).abs() < EPS);
        // Single receiver: u = a (efficient).
        assert!((m.link_rate(&[0.3]) - 0.3).abs() < EPS);
        // Rates clamp at σ.
        assert!((m.link_rate(&[2.0, 0.1]) - 1.0).abs() < EPS);
    }

    #[test]
    fn random_join_dominates_max() {
        let m = LinkRateModel::RandomJoin { sigma: 1.0 };
        for rates in [&[0.1, 0.9][..], &[0.2, 0.2, 0.2], &[0.99, 0.5]] {
            let max = rates.iter().cloned().fold(0.0_f64, f64::max);
            assert!(m.link_rate(rates) >= max - EPS);
        }
    }

    #[test]
    fn domination_relation() {
        use LinkRateModel::*;
        assert!(Scaled(2.0).dominates(&Efficient));
        assert!(Scaled(3.0).dominates(&Scaled(2.0)));
        assert!(!Scaled(2.0).dominates(&Scaled(3.0)));
        assert!(Sum.dominates(&Efficient));
        assert!(Efficient.dominates(&Efficient));
        assert!(!Efficient.dominates(&Sum));
    }

    #[test]
    fn config_builders() {
        let cfg = LinkRateConfig::efficient(3).with_session(1, LinkRateModel::Scaled(2.0));
        assert_eq!(*cfg.model(0), LinkRateModel::Efficient);
        assert_eq!(*cfg.model(1), LinkRateModel::Scaled(2.0));
        assert_eq!(cfg.len(), 3);
        assert!(cfg.all_piecewise_linear());
        let cfg2 = LinkRateConfig::uniform(3, LinkRateModel::RandomJoin { sigma: 8.0 });
        assert!(!cfg2.all_piecewise_linear());
        assert!(cfg2.dominates(&LinkRateConfig::efficient(3)));
    }
}
