//! Weighted multi-rate max-min fairness (a Section 5 extension,
//! implemented).
//!
//! The paper's future-work section proposes that "many of our results can
//! be directly applied to TCP-fairness by constructing a definition of
//! max-min fairness where receiver rates are assigned weights (i.e., a
//! receiver's rate is weighted by the inverse of round trip time)". This
//! module implements exactly that: each receiver `r_{i,k}` carries a weight
//! `w_{i,k} > 0`, and the allocation is max-min fair over the *normalized*
//! rates `a_{i,k} / w_{i,k}`. Unweighted max-min is the `w ≡ 1` special
//! case; TCP-friendliness uses `w = 1/RTT` (per the Mahdavi–Floyd model at
//! fixed loss).
//!
//! The preferred entry point is [`crate::allocator::Weighted`] through the
//! [`crate::allocator::Allocator`] trait; the [`weighted_max_min`] free
//! function remains as a deprecated shim.
//!
//! The algorithm is progressive filling over a common *potential* `φ`:
//! every active receiver holds `a = w·φ`. Under the efficient link-rate
//! model the load is `u_j(φ) = Σ_i max(f_{i,j}, φ·W_{i,j})` where
//! `f_{i,j}` is the session's frozen maximum on the link and `W_{i,j}` the
//! largest *weight* among its active receivers crossing the link — the same
//! `K + Σ w·max(b, φ)` form as the unweighted solver, solved exactly by
//! breakpoint scanning. Free riders generalize: an active receiver whose
//! weight is below its session's max weight on a saturated link rides it
//! indefinitely (its rate can never catch the session maximum there), so
//! only maximal-weight receivers freeze on saturation.
//!
//! Scope: multi-rate sessions under the efficient model (the setting the
//! paper's remark addresses). Single-rate sessions would need a convention
//! for mixing per-receiver weights with the uniform-rate constraint that
//! the paper does not define; the solver rejects them.

use crate::allocation::{Allocation, RATE_EPS};
use crate::allocator::SolverWorkspace;
use crate::maxmin::{FreezeReason, MaxMinSolution};
use mlf_net::{LinkId, Network, ReceiverId};

/// Per-receiver weights, shaped like the network (`[session][receiver]`).
#[derive(Debug, Clone, PartialEq)]
pub struct Weights {
    w: Vec<Vec<f64>>,
}

impl Weights {
    /// Uniform weights (reduces weighted max-min to the ordinary one).
    pub fn uniform(net: &Network) -> Self {
        Weights {
            w: net
                .sessions()
                .iter()
                .map(|s| vec![1.0; s.receivers.len()])
                .collect(),
        }
    }

    /// Explicit weights; must be positive and finite and match the network
    /// shape (checked by the solver).
    pub fn from_values(w: Vec<Vec<f64>>) -> Self {
        Weights { w }
    }

    /// TCP-style weights from per-receiver round-trip times: `w = 1/RTT`.
    // mlf-lint: allow(unused-pub, reason = "intentional API surface kept public alongside its siblings")
    pub fn from_rtts(rtts: Vec<Vec<f64>>) -> Self {
        Weights {
            w: rtts
                .into_iter()
                .map(|s| s.into_iter().map(|rtt| 1.0 / rtt).collect())
                .collect(),
        }
    }

    /// The weight of one receiver.
    pub fn get(&self, r: ReceiverId) -> f64 {
        self.w[r.session.0][r.index]
    }

    /// The raw weight tables, `[session][receiver]` (solver internals and
    /// the differential reference).
    pub(crate) fn values(&self) -> &[Vec<f64>] {
        &self.w
    }
}

/// Compute the weighted multi-rate max-min fair allocation under the
/// efficient link-rate model.
///
/// # Panics
///
/// Panics if any session is single-rate, the weight shape mismatches, or a
/// weight is not positive and finite.
#[deprecated(
    since = "0.2.0",
    note = "use `allocator::Weighted::new(weights)` via the `Allocator` trait"
)]
pub fn weighted_max_min(net: &Network, weights: &Weights) -> Allocation {
    weighted_solve_in(net, weights, &mut SolverWorkspace::new()).allocation
}

/// Weighted progressive filling into a caller-provided workspace: the
/// engine behind [`crate::allocator::Weighted`].
#[allow(clippy::needless_range_loop)] // parallel (rates, active, weights) tables
pub(crate) fn weighted_solve_in(
    net: &Network,
    weights: &Weights,
    ws: &mut SolverWorkspace,
) -> MaxMinSolution {
    assert!(
        net.sessions().iter().all(|s| s.kind.is_multi_rate()),
        "weighted max-min is defined for multi-rate sessions"
    );
    assert_eq!(weights.w.len(), net.session_count(), "weight shape");
    for (s, wsess) in net.sessions().iter().zip(&weights.w) {
        assert_eq!(wsess.len(), s.receivers.len(), "weight shape");
        assert!(
            wsess.iter().all(|w| w.is_finite() && *w > 0.0),
            "weights must be positive"
        );
    }

    ws.reset(net);
    // Seed the per-slot active-weight maxima (every receiver starts
    // active): the ascending-receiver fold over each slot's weights.
    for slot in 0..ws.index.slot_count() {
        let i = ws.index.slot_session(slot);
        let mut wmax = 0.0_f64;
        for &k in ws.index.slot_receivers(slot) {
            wmax = wmax.max(weights.w[i][k]);
        }
        ws.slot_wmax[slot] = wmax;
    }
    let mut phi = 0.0_f64;
    let mut iterations = 0usize;

    loop {
        if ws.active_total == 0 {
            break;
        }
        iterations += 1;
        assert!(iterations <= net.receiver_count() + 1, "no convergence");

        // Potential cap from κ: receiver r freezes at φ = κ_i / w_r.
        let mut upper = f64::INFINITY;
        for (i, s) in net.sessions().iter().enumerate() {
            for k in 0..s.receivers.len() {
                if ws.active[i][k] {
                    upper = upper.min(s.max_rate / weights.w[i][k]);
                }
            }
        }
        debug_assert!(upper.is_finite());

        // Exact saturation potential per link, from the cached slot
        // aggregates (`frozen_max` and the active-weight maximum are both
        // max-folds, which incremental maintenance reproduces exactly).
        let mut next = upper;
        for j in 0..net.link_count() {
            let link = LinkId(j);
            if ws.link_active[j] == 0 {
                continue;
            }
            let mut constant = 0.0;
            ws.terms.clear(); // (breakpoint b, slope W)
            for slot in ws.index.link_slots(j) {
                let frozen_max = ws.slot_frozen_max[slot];
                let w_max = ws.slot_wmax[slot];
                if w_max > 0.0 {
                    ws.terms.push((frozen_max / w_max, w_max));
                } else {
                    constant += frozen_max;
                }
            }
            let cap = net.graph().capacity(link);
            let terms = &ws.terms;
            let load_at = |p: f64| -> f64 {
                constant + terms.iter().map(|&(b, w)| w * b.max(p)).sum::<f64>()
            };
            ws.breakpoints.clear();
            ws.breakpoints.extend(terms.iter().map(|&(b, _)| b));
            ws.breakpoints.push(phi);
            ws.breakpoints.push(upper);
            // total_cmp: never panic on a NaN breakpoint mid-sweep.
            ws.breakpoints.sort_by(f64::total_cmp);
            ws.breakpoints.dedup();
            let mut lo = phi;
            let mut sat = upper;
            for &bp in ws.breakpoints.iter().filter(|&&b| b > phi && b <= upper) {
                if load_at(bp) > cap + RATE_EPS {
                    let slope: f64 = terms
                        .iter()
                        .filter(|&&(b, _)| b <= lo + RATE_EPS)
                        .map(|&(_, w)| w)
                        .sum();
                    let base = load_at(lo);
                    sat = if slope <= 0.0 {
                        lo
                    } else {
                        (lo + (cap - base) / slope).clamp(lo, bp)
                    };
                    break;
                }
                lo = bp;
            }
            next = next.min(sat);
        }
        phi = next.max(phi);

        // Raise all active receivers to w·φ.
        for i in 0..ws.rates.len() {
            for k in 0..ws.rates[i].len() {
                if ws.active[i][k] {
                    ws.rates[i][k] = weights.w[i][k] * phi;
                }
            }
        }

        let mut froze = false;
        // κ freezes.
        for (i, s) in net.sessions().iter().enumerate() {
            for k in 0..s.receivers.len() {
                if ws.active[i][k] && weights.w[i][k] * phi >= s.max_rate - RATE_EPS {
                    ws.active[i][k] = false;
                    ws.rates[i][k] = s.max_rate;
                    ws.reasons[i][k] = Some(FreezeReason::MaxRate);
                    ws.note_freeze_weighted(i, k, &weights.w);
                    froze = true;
                }
            }
        }
        // Link freezes: on saturated links, freeze the session's
        // maximal-weight active receivers that are at or past the frozen
        // max. A session's maximum rate on a link is `max(frozen_max,
        // w_max·φ)` — active rates are exactly `w·φ` and multiplication by
        // the non-negative φ is monotone, so the cached maxima reproduce
        // the receiver-table fold bit for bit.
        for j in 0..net.link_count() {
            let link = LinkId(j);
            if ws.link_active[j] == 0 {
                continue; // nothing left to freeze here
            }
            // Load at current φ.
            let mut load = 0.0;
            for slot in ws.index.link_slots(j) {
                let frozen_max = ws.slot_frozen_max[slot];
                let max = if ws.slot_active[slot] > 0 {
                    frozen_max.max(ws.slot_wmax[slot] * phi)
                } else {
                    frozen_max
                };
                load += max;
            }
            if load < net.graph().capacity(link) - RATE_EPS {
                continue;
            }
            for slot in ws.index.link_slots(j) {
                let i = ws.index.slot_session(slot);
                let session_max = if ws.slot_active[slot] > 0 {
                    ws.slot_frozen_max[slot].max(ws.slot_wmax[slot] * phi)
                } else {
                    ws.slot_frozen_max[slot]
                };
                let on_len = ws.index.slot_receivers(slot).len();
                for t in 0..on_len {
                    let k = ws.index.slot_receivers(slot)[t];
                    if ws.active[i][k] && ws.rates[i][k] >= session_max - RATE_EPS {
                        ws.active[i][k] = false;
                        ws.reasons[i][k] = Some(FreezeReason::Link(link));
                        ws.note_freeze_weighted(i, k, &weights.w);
                        froze = true;
                    }
                }
            }
        }
        assert!(froze, "weighted filling made no progress at phi = {phi}");
    }
    ws.take_solution(iterations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocator::{Allocator, Hybrid, MultiRate, Weighted};
    use crate::linkrate::LinkRateConfig;
    use mlf_net::topology::random_network;
    use mlf_net::{Graph, Session};

    #[test]
    fn uniform_weights_match_unweighted() {
        let mut ws = SolverWorkspace::new();
        for seed in 0..15u64 {
            let net = random_network(seed, 10, 4, 4).unwrap();
            let weighted = Weighted::uniform().solve(&net, &mut ws).allocation;
            let plain = Hybrid::as_declared().solve(&net, &mut ws).allocation;
            for (a, b) in weighted.rates().iter().zip(plain.rates()) {
                for (x, y) in a.iter().zip(b) {
                    assert!((x - y).abs() < 1e-9, "seed {seed}: {x} vs {y}");
                }
            }
        }
    }

    #[test]
    fn weights_split_a_shared_link_proportionally() {
        let mut g = Graph::new();
        let n = g.add_nodes(2);
        g.add_link(n[0], n[1], 9.0).unwrap();
        let net = Network::new(
            g,
            vec![Session::unicast(n[0], n[1]), Session::unicast(n[0], n[1])],
        )
        .unwrap();
        let w = Weights::from_values(vec![vec![2.0], vec![1.0]]);
        let alloc = Weighted::new(w).allocate(&net);
        assert!((alloc.rate(ReceiverId::new(0, 0)) - 6.0).abs() < 1e-9);
        assert!((alloc.rate(ReceiverId::new(1, 0)) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn rtt_weights_behave_like_tcp() {
        // Two flows on one link, RTTs 50ms and 100ms: the short-RTT flow
        // gets twice the rate, as the TCP-friendly model prescribes.
        let mut g = Graph::new();
        let n = g.add_nodes(2);
        g.add_link(n[0], n[1], 3.0).unwrap();
        let net = Network::new(
            g,
            vec![Session::unicast(n[0], n[1]), Session::unicast(n[0], n[1])],
        )
        .unwrap();
        let alloc = Weighted::from_rtts(vec![vec![0.05], vec![0.1]]).allocate(&net);
        let a = alloc.rate(ReceiverId::new(0, 0));
        let b = alloc.rate(ReceiverId::new(1, 0));
        assert!((a - 2.0 * b).abs() < 1e-9);
        assert!((a + b - 3.0).abs() < 1e-9);
    }

    #[test]
    fn weighted_free_rider_rides_past_saturation() {
        // Session with two receivers behind one shared link (cap 8) that
        // also carries a weight-1 unicast; receiver weights 3 and 1.
        // Saturation: max(3φ, 1φ) + 1φ = 4φ = 8 -> φ = 2: the weight-3
        // receiver (rate 6) and the unicast (rate 2) freeze; the weight-1
        // receiver rides the shared link (its rate 2 < 6 adds nothing) and
        // climbs until its own tail at 5 binds.
        let mut g = Graph::new();
        let n = g.add_nodes(4);
        g.add_link(n[0], n[1], 8.0).unwrap();
        g.add_link(n[1], n[2], 100.0).unwrap();
        g.add_link(n[1], n[3], 5.0).unwrap();
        let net = Network::new(
            g,
            vec![
                Session::multi_rate(n[0], vec![n[2], n[3]]),
                Session::unicast(n[0], n[1]),
            ],
        )
        .unwrap();
        let w = Weights::from_values(vec![vec![3.0, 1.0], vec![1.0]]);
        let sol = Weighted::new(w).solve(&net, &mut SolverWorkspace::new());
        let alloc = &sol.allocation;
        assert!((alloc.rate(ReceiverId::new(0, 0)) - 6.0).abs() < 1e-9);
        assert!((alloc.rate(ReceiverId::new(1, 0)) - 2.0).abs() < 1e-9);
        assert!((alloc.rate(ReceiverId::new(0, 1)) - 5.0).abs() < 1e-9);
        // The riders froze on their own links, with diagnostics to prove it.
        assert_eq!(
            sol.reason(ReceiverId::new(0, 0)),
            FreezeReason::Link(LinkId(0))
        );
        assert_eq!(
            sol.reason(ReceiverId::new(0, 1)),
            FreezeReason::Link(LinkId(2))
        );
        // Feasible under the efficient model.
        let cfg = LinkRateConfig::efficient(2);
        assert!(alloc.is_feasible(&net, &cfg));
    }

    #[test]
    fn kappa_caps_apply_to_rates_not_potentials() {
        let mut g = Graph::new();
        let n = g.add_nodes(2);
        g.add_link(n[0], n[1], 10.0).unwrap();
        let net = Network::new(
            g,
            vec![
                Session::unicast(n[0], n[1]).with_max_rate(1.0),
                Session::unicast(n[0], n[1]),
            ],
        )
        .unwrap();
        let w = Weights::from_values(vec![vec![5.0], vec![1.0]]);
        let sol = Weighted::new(w).solve(&net, &mut SolverWorkspace::new());
        // The heavy receiver caps at κ = 1 long before its weighted share;
        // the rest goes to the other flow.
        assert!((sol.allocation.rate(ReceiverId::new(0, 0)) - 1.0).abs() < 1e-9);
        assert!((sol.allocation.rate(ReceiverId::new(1, 0)) - 9.0).abs() < 1e-9);
        assert_eq!(sol.reason(ReceiverId::new(0, 0)), FreezeReason::MaxRate);
    }

    #[test]
    fn results_are_feasible_on_random_networks() {
        let mut ws = SolverWorkspace::new();
        for seed in 20..40u64 {
            let net = random_network(seed, 12, 4, 4).unwrap();
            // Pseudo-random but deterministic weights.
            let w = Weights::from_values(
                net.sessions()
                    .iter()
                    .enumerate()
                    .map(|(i, s)| {
                        (0..s.receivers.len())
                            .map(|k| 0.5 + ((seed as usize + 3 * i + 7 * k) % 5) as f64)
                            .collect()
                    })
                    .collect(),
            );
            let alloc = Weighted::new(w).solve(&net, &mut ws).allocation;
            let cfg = LinkRateConfig::efficient(net.session_count());
            assert!(
                alloc.is_feasible(&net, &cfg),
                "seed {seed}: {:?}",
                alloc.feasibility_violation(&net, &cfg)
            );
        }
    }

    #[test]
    fn legacy_shim_matches_the_trait() {
        #[allow(deprecated)]
        for seed in 0..5u64 {
            let net = random_network(seed, 10, 3, 3).unwrap();
            let w = Weights::uniform(&net);
            #[allow(deprecated)]
            let legacy = weighted_max_min(&net, &w);
            let new = Weighted::new(w).allocate(&net);
            assert_eq!(legacy.rates(), new.rates(), "seed {seed}");
        }
        // And uniform weighting equals plain multi-rate max-min.
        let net = random_network(7, 10, 3, 3).unwrap();
        assert_eq!(
            Weighted::uniform().allocate(&net).rates(),
            MultiRate::new().allocate(&net).rates()
        );
    }

    #[test]
    #[should_panic(expected = "multi-rate")]
    fn rejects_single_rate_sessions() {
        let mut g = Graph::new();
        let n = g.add_nodes(3);
        g.add_link(n[0], n[1], 1.0).unwrap();
        g.add_link(n[0], n[2], 1.0).unwrap();
        let net = Network::new(g, vec![Session::single_rate(n[0], vec![n[1], n[2]])]).unwrap();
        let _ = Weighted::uniform().allocate(&net);
    }
}
