//! Frozen pre-incidence-index reference solvers, kept verbatim for
//! differential testing.
//!
//! The production engines in [`crate::maxmin`], [`crate::weighted`] and
//! [`crate::unicast`] run on the CSR incidence structure of
//! [`crate::index::NetworkIndex`] with incrementally maintained per-link
//! aggregates. This module preserves the *original* scan-everything
//! implementations — the nested `for link { for session { for receiver } }`
//! rescans they replaced — so property tests can assert the optimized
//! solvers are **bitwise identical** to them on arbitrary networks
//! (`tests/incidence_differential.rs` at the workspace root, plus the
//! in-crate unit tests).
//!
//! Nothing here is meant for production use: every call allocates a fresh
//! private scratch, and no attempt is made to keep the hot loops tight.
//! Treat the module as executable documentation of the solver semantics the
//! incidence-indexed engines must reproduce bit for bit.

// mlf-lint: allow-file(panic-unwrap, reason = "frozen pre-refactor engine kept byte-for-byte for the bitwise differential; only comments may change in this file")
use crate::allocation::{Allocation, RATE_EPS};
use crate::allocator::Regimes;
use crate::linkrate::{LinkRateConfig, LinkRateModel};
use crate::maxmin::{FreezeReason, MaxMinSolution};
use crate::weighted::Weights;
use mlf_net::{LinkId, Network, SessionId};

/// Private scratch of the reference engines: the exact buffer set the
/// pre-index `SolverWorkspace` held, allocated fresh per call.
#[derive(Debug, Default)]
struct RefWorkspace {
    rates: Vec<Vec<f64>>,
    active: Vec<Vec<bool>>,
    reasons: Vec<Vec<Option<FreezeReason>>>,
    terms: Vec<(f64, f64)>,
    breakpoints: Vec<f64>,
    scratch: Vec<f64>,
    link_used: Vec<f64>,
    link_flag: Vec<bool>,
}

impl RefWorkspace {
    fn reset(&mut self, net: &Network) {
        let m = net.session_count();
        self.rates.resize_with(m, Vec::new);
        self.active.resize_with(m, Vec::new);
        self.reasons.resize_with(m, Vec::new);
        for (i, s) in net.sessions().iter().enumerate() {
            let k = s.receivers.len();
            self.rates[i].clear();
            self.rates[i].resize(k, 0.0);
            self.active[i].clear();
            self.active[i].resize(k, true);
            self.reasons[i].clear();
            self.reasons[i].resize(k, None);
        }
        self.link_used.clear();
        self.link_used.resize(net.link_count(), 0.0);
        self.link_flag.clear();
        self.link_flag.resize(net.link_count(), false);
    }

    fn take_solution(&self, iterations: usize) -> MaxMinSolution {
        MaxMinSolution {
            allocation: Allocation::from_rates(self.rates.clone()),
            reasons: self
                .reasons
                .iter()
                .map(|rs| {
                    rs.iter()
                        .map(|r| r.expect("every receiver froze"))
                        .collect()
                })
                .collect(),
            iterations,
        }
    }
}

/// Reference progressive filling with an explicit session-type regime: the
/// pre-index implementation of `maxmin::solve_in`, scan loops and all.
pub fn solve_in(net: &Network, cfg: &LinkRateConfig, regimes: &Regimes) -> MaxMinSolution {
    assert_eq!(
        cfg.len(),
        net.session_count(),
        "link-rate config must cover every session"
    );
    let mut ws = RefWorkspace::default();
    ws.reset(net);
    let mut state = State {
        net,
        cfg,
        regimes,
        ws: &mut ws,
        level: 0.0,
    };
    let mut iterations = 0;
    while state.any_active() {
        iterations += 1;
        assert!(
            iterations <= net.receiver_count() + 1,
            "progressive filling failed to converge (tolerance breakdown?)"
        );
        state.step();
    }
    ws.take_solution(iterations)
}

/// Reference solve honouring each session's declared type under explicit
/// link rates (the shape of `maxmin::solve`).
pub fn solve(net: &Network, cfg: &LinkRateConfig) -> MaxMinSolution {
    solve_in(net, cfg, &Regimes::AsDeclared)
}

struct State<'a> {
    net: &'a Network,
    cfg: &'a LinkRateConfig,
    regimes: &'a Regimes,
    ws: &'a mut RefWorkspace,
    level: f64,
}

impl State<'_> {
    fn any_active(&self) -> bool {
        self.ws.active.iter().any(|s| s.iter().any(|&a| a))
    }

    fn session_has_active(&self, i: usize) -> bool {
        self.ws.active[i].iter().any(|&a| a)
    }

    fn single_rate(&self, i: usize) -> bool {
        self.regimes.kind(self.net, i).is_single_rate()
    }

    fn effective_kappa(&self, i: usize) -> f64 {
        let kappa = self.net.sessions()[i].max_rate;
        match *self.cfg.model(i) {
            LinkRateModel::RandomJoin { sigma } => kappa.min(sigma),
            _ => kappa,
        }
    }

    fn step(&mut self) {
        let upper = (0..self.net.session_count())
            .filter(|&i| self.session_has_active(i))
            .map(|i| self.effective_kappa(i))
            .fold(f64::INFINITY, f64::min);
        debug_assert!(upper.is_finite(), "session max rates are finite");

        let mut next = upper;
        for j in 0..self.net.link_count() {
            if !self.link_has_active(j) {
                continue;
            }
            let lj = self.link_saturation_level(j, upper);
            next = next.min(lj);
        }
        debug_assert!(
            next >= self.level - RATE_EPS,
            "water level must not decrease"
        );
        self.level = next.max(self.level);

        for i in 0..self.ws.rates.len() {
            for k in 0..self.ws.rates[i].len() {
                if self.ws.active[i][k] {
                    self.ws.rates[i][k] = self.level;
                }
            }
        }

        let mut froze_any = false;

        for i in 0..self.net.session_count() {
            if self.session_has_active(i) && self.effective_kappa(i) <= self.level + RATE_EPS {
                let kappa = self.effective_kappa(i);
                for k in 0..self.ws.rates[i].len() {
                    if self.ws.active[i][k] {
                        self.ws.active[i][k] = false;
                        self.ws.rates[i][k] = kappa;
                        self.ws.reasons[i][k] = Some(FreezeReason::MaxRate);
                        froze_any = true;
                    }
                }
            }
        }

        for j in 0..self.net.link_count() {
            let link = LinkId(j);
            if !self.link_has_active(j) {
                continue;
            }
            let load = self.link_load_at(j, self.level);
            if load < self.net.graph().capacity(link) - RATE_EPS {
                continue;
            }
            for i in 0..self.net.session_count() {
                let on = self.net.receivers_of_session_on_link(link, SessionId(i));
                if on.is_empty() || !on.iter().any(|&k| self.ws.active[i][k]) {
                    continue;
                }
                if !self.session_marginal_on(j, i) {
                    continue; // free rider: keeps rising under the frozen max
                }
                if self.single_rate(i) {
                    for k in 0..self.ws.rates[i].len() {
                        if self.ws.active[i][k] {
                            self.ws.active[i][k] = false;
                            self.ws.reasons[i][k] = Some(if on.contains(&k) {
                                FreezeReason::Link(link)
                            } else {
                                FreezeReason::SessionClosure
                            });
                            froze_any = true;
                        }
                    }
                } else {
                    for &k in on {
                        if self.ws.active[i][k] {
                            self.ws.active[i][k] = false;
                            self.ws.reasons[i][k] = Some(FreezeReason::Link(link));
                            froze_any = true;
                        }
                    }
                }
            }
        }

        assert!(
            froze_any,
            "progressive filling made no progress at level {}",
            self.level
        );
    }

    fn link_has_active(&self, j: usize) -> bool {
        let link = LinkId(j);
        (0..self.net.session_count()).any(|i| {
            self.net
                .receivers_of_session_on_link(link, SessionId(i))
                .iter()
                .any(|&k| self.ws.active[i][k])
        })
    }

    fn fill_session_rates_at(&mut self, j: usize, i: usize, level: f64) {
        let ws = &mut *self.ws;
        ws.scratch.clear();
        for &k in self
            .net
            .receivers_of_session_on_link(LinkId(j), SessionId(i))
        {
            ws.scratch.push(if ws.active[i][k] {
                level
            } else {
                ws.rates[i][k]
            });
        }
    }

    fn link_load_at(&mut self, j: usize, level: f64) -> f64 {
        let mut total = 0.0;
        for i in 0..self.net.session_count() {
            self.fill_session_rates_at(j, i, level);
            total += self.cfg.model(i).link_rate(&self.ws.scratch);
        }
        total
    }

    fn session_marginal_on(&mut self, j: usize, i: usize) -> bool {
        let link = LinkId(j);
        let on = self.net.receivers_of_session_on_link(link, SessionId(i));
        if !on.iter().any(|&k| self.ws.active[i][k]) {
            return false;
        }
        match *self.cfg.model(i) {
            LinkRateModel::Efficient | LinkRateModel::Scaled(_) => {
                let frozen_max = on
                    .iter()
                    .filter(|&&k| !self.ws.active[i][k])
                    .map(|&k| self.ws.rates[i][k])
                    .fold(0.0_f64, f64::max);
                self.level >= frozen_max - RATE_EPS
            }
            LinkRateModel::Sum => true,
            LinkRateModel::RandomJoin { .. } => {
                let delta = (self.level.abs() + 1.0) * 1e-7;
                self.fill_session_rates_at(j, i, self.level);
                let now = self.cfg.model(i).link_rate(&self.ws.scratch);
                self.fill_session_rates_at(j, i, self.level + delta);
                let bumped = self.cfg.model(i).link_rate(&self.ws.scratch);
                bumped > now + RATE_EPS * delta
            }
        }
    }

    fn link_saturation_level(&mut self, j: usize, upper: f64) -> f64 {
        let cap = self.net.graph().capacity(LinkId(j));
        let linear = (0..self.net.session_count()).all(|i| {
            self.net
                .receivers_of_session_on_link(LinkId(j), SessionId(i))
                .is_empty()
                || self.cfg.model(i).is_piecewise_linear()
        });
        if linear {
            self.saturation_level_linear(j, upper, cap)
        } else {
            self.saturation_level_bisect(j, upper, cap)
        }
    }

    fn saturation_level_linear(&mut self, j: usize, upper: f64, cap: f64) -> f64 {
        let link = LinkId(j);
        let mut constant = 0.0;
        let ws = &mut *self.ws;
        ws.terms.clear();
        for i in 0..self.net.session_count() {
            let on = self.net.receivers_of_session_on_link(link, SessionId(i));
            if on.is_empty() {
                continue;
            }
            let active_count = on.iter().filter(|&&k| ws.active[i][k]).count();
            let mut frozen_sum = 0.0_f64;
            let mut frozen_max = 0.0_f64;
            for &k in on.iter().filter(|&&k| !ws.active[i][k]) {
                frozen_sum += ws.rates[i][k];
                frozen_max = frozen_max.max(ws.rates[i][k]);
            }
            match *self.cfg.model(i) {
                LinkRateModel::Efficient => {
                    if active_count > 0 {
                        ws.terms.push((frozen_max, 1.0));
                    } else {
                        constant += frozen_max;
                    }
                }
                LinkRateModel::Scaled(v) => {
                    let w = if on.len() >= 2 { v } else { 1.0 };
                    if active_count > 0 {
                        ws.terms.push((frozen_max, w));
                    } else {
                        constant += w * frozen_max;
                    }
                }
                LinkRateModel::Sum => {
                    constant += frozen_sum;
                    if active_count > 0 {
                        ws.terms.push((0.0, active_count as f64));
                    }
                }
                LinkRateModel::RandomJoin { .. } => {
                    unreachable!("nonlinear sessions route to bisection")
                }
            }
        }
        if ws.terms.is_empty() {
            return upper;
        }
        ws.breakpoints.clear();
        ws.breakpoints.extend(ws.terms.iter().map(|&(b, _)| b));
        ws.breakpoints.push(self.level);
        ws.breakpoints.push(upper);
        ws.breakpoints.sort_by(f64::total_cmp);
        ws.breakpoints.dedup();
        let terms = &ws.terms;
        let load_at =
            |l: f64| -> f64 { constant + terms.iter().map(|&(b, w)| w * b.max(l)).sum::<f64>() };
        let mut lo = self.level;
        for &bp in ws
            .breakpoints
            .iter()
            .filter(|&&b| b > self.level && b <= upper)
        {
            if load_at(bp) > cap + RATE_EPS {
                let slope: f64 = terms
                    .iter()
                    .filter(|&&(b, _)| b <= lo + RATE_EPS)
                    .map(|&(_, w)| w)
                    .sum();
                let base = load_at(lo);
                if slope <= 0.0 {
                    return lo;
                }
                let l = lo + (cap - base) / slope;
                return l.clamp(lo, bp);
            }
            lo = bp;
        }
        upper
    }

    fn saturation_level_bisect(&mut self, j: usize, upper: f64, cap: f64) -> f64 {
        let mut lo = self.level;
        if self.link_load_at(j, upper) <= cap + RATE_EPS {
            return upper;
        }
        if self.link_load_at(j, lo) >= cap - RATE_EPS {
            return lo;
        }
        let mut hi = upper;
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.link_load_at(j, mid) <= cap {
                lo = mid;
            } else {
                hi = mid;
            }
            if hi - lo < 1e-13 * (1.0 + hi.abs()) {
                break;
            }
        }
        lo
    }
}

/// Reference weighted progressive filling: the pre-index implementation of
/// `weighted::weighted_solve_in`.
#[allow(clippy::needless_range_loop)] // parallel (rates, active, weights) tables
pub fn weighted_solve(net: &Network, weights: &Weights) -> MaxMinSolution {
    assert!(
        net.sessions().iter().all(|s| s.kind.is_multi_rate()),
        "weighted max-min is defined for multi-rate sessions"
    );
    let w = weights.values();
    assert_eq!(w.len(), net.session_count(), "weight shape");
    for (s, wsess) in net.sessions().iter().zip(w) {
        assert_eq!(wsess.len(), s.receivers.len(), "weight shape");
        assert!(
            wsess.iter().all(|w| w.is_finite() && *w > 0.0),
            "weights must be positive"
        );
    }

    let mut ws = RefWorkspace::default();
    ws.reset(net);
    let mut phi = 0.0_f64;
    let mut iterations = 0usize;

    loop {
        let any_active = ws.active.iter().any(|s| s.iter().any(|&a| a));
        if !any_active {
            break;
        }
        iterations += 1;
        assert!(iterations <= net.receiver_count() + 1, "no convergence");

        let mut upper = f64::INFINITY;
        for (i, s) in net.sessions().iter().enumerate() {
            for k in 0..s.receivers.len() {
                if ws.active[i][k] {
                    upper = upper.min(s.max_rate / w[i][k]);
                }
            }
        }
        debug_assert!(upper.is_finite());

        let mut next = upper;
        for j in 0..net.link_count() {
            let link = LinkId(j);
            let mut constant = 0.0;
            ws.terms.clear();
            let mut has_active = false;
            for i in 0..net.session_count() {
                let on = net.receivers_of_session_on_link(link, SessionId(i));
                if on.is_empty() {
                    continue;
                }
                let frozen_max = on
                    .iter()
                    .filter(|&&k| !ws.active[i][k])
                    .map(|&k| ws.rates[i][k])
                    .fold(0.0_f64, f64::max);
                let w_max = on
                    .iter()
                    .filter(|&&k| ws.active[i][k])
                    .map(|&k| w[i][k])
                    .fold(0.0_f64, f64::max);
                if w_max > 0.0 {
                    has_active = true;
                    ws.terms.push((frozen_max / w_max, w_max));
                } else {
                    constant += frozen_max;
                }
            }
            if !has_active {
                continue;
            }
            let cap = net.graph().capacity(link);
            let terms = &ws.terms;
            let load_at = |p: f64| -> f64 {
                constant + terms.iter().map(|&(b, w)| w * b.max(p)).sum::<f64>()
            };
            ws.breakpoints.clear();
            ws.breakpoints.extend(terms.iter().map(|&(b, _)| b));
            ws.breakpoints.push(phi);
            ws.breakpoints.push(upper);
            ws.breakpoints.sort_by(f64::total_cmp);
            ws.breakpoints.dedup();
            let mut lo = phi;
            let mut sat = upper;
            for &bp in ws.breakpoints.iter().filter(|&&b| b > phi && b <= upper) {
                if load_at(bp) > cap + RATE_EPS {
                    let slope: f64 = terms
                        .iter()
                        .filter(|&&(b, _)| b <= lo + RATE_EPS)
                        .map(|&(_, w)| w)
                        .sum();
                    let base = load_at(lo);
                    sat = if slope <= 0.0 {
                        lo
                    } else {
                        (lo + (cap - base) / slope).clamp(lo, bp)
                    };
                    break;
                }
                lo = bp;
            }
            next = next.min(sat);
        }
        phi = next.max(phi);

        for i in 0..ws.rates.len() {
            for k in 0..ws.rates[i].len() {
                if ws.active[i][k] {
                    ws.rates[i][k] = w[i][k] * phi;
                }
            }
        }

        let mut froze = false;
        for (i, s) in net.sessions().iter().enumerate() {
            for k in 0..s.receivers.len() {
                if ws.active[i][k] && w[i][k] * phi >= s.max_rate - RATE_EPS {
                    ws.active[i][k] = false;
                    ws.rates[i][k] = s.max_rate;
                    ws.reasons[i][k] = Some(FreezeReason::MaxRate);
                    froze = true;
                }
            }
        }
        for j in 0..net.link_count() {
            let link = LinkId(j);
            let mut load = 0.0;
            for i in 0..net.session_count() {
                let on = net.receivers_of_session_on_link(link, SessionId(i));
                let max = on.iter().map(|&k| ws.rates[i][k]).fold(0.0_f64, f64::max);
                load += max;
            }
            if load < net.graph().capacity(link) - RATE_EPS {
                continue;
            }
            for i in 0..net.session_count() {
                let on = net.receivers_of_session_on_link(link, SessionId(i));
                if on.is_empty() {
                    continue;
                }
                let session_max = on.iter().map(|&k| ws.rates[i][k]).fold(0.0_f64, f64::max);
                for &k in on {
                    if ws.active[i][k] && ws.rates[i][k] >= session_max - RATE_EPS {
                        ws.active[i][k] = false;
                        ws.reasons[i][k] = Some(FreezeReason::Link(link));
                        froze = true;
                    }
                }
            }
        }
        assert!(froze, "weighted filling made no progress at phi = {phi}");
    }
    ws.take_solution(iterations)
}

/// Reference textbook unicast water-filling: the pre-index implementation of
/// `unicast::unicast_solve_in`.
#[allow(clippy::needless_range_loop)] // parallel per-flow tables
pub fn unicast_solve(net: &Network) -> MaxMinSolution {
    assert!(
        net.sessions().iter().all(|s| s.is_unicast()),
        "unicast_max_min requires an all-unicast network"
    );
    let mut ws = RefWorkspace::default();
    ws.reset(net);
    let m = net.session_count();
    let route = |i: usize| net.route(mlf_net::ReceiverId::new(i, 0));
    let kappa = |i: usize| net.sessions()[i].max_rate;

    let mut iterations = 0usize;
    loop {
        let n_active = (0..m).filter(|&i| ws.active[i][0]).count();
        if n_active == 0 {
            break;
        }
        iterations += 1;
        assert!(iterations <= m + 1, "no convergence");

        let mut next = f64::INFINITY;
        for i in 0..m {
            if ws.active[i][0] {
                next = next.min(kappa(i));
            }
        }
        for j in 0..net.link_count() {
            let link = LinkId(j);
            let on = (0..m)
                .filter(|&i| ws.active[i][0] && route(i).contains(&link))
                .count();
            if on == 0 {
                continue;
            }
            let share = (net.graph().capacity(link) - ws.link_used[j]) / on as f64;
            next = next.min(share);
        }
        debug_assert!(next.is_finite());

        for i in 0..m {
            if ws.active[i][0] {
                ws.rates[i][0] = next.min(kappa(i));
            }
        }
        for j in 0..net.link_count() {
            let link = LinkId(j);
            let on = (0..m)
                .filter(|&i| ws.active[i][0] && route(i).contains(&link))
                .count();
            ws.link_flag[j] = if on == 0 {
                false
            } else {
                let share = (net.graph().capacity(link) - ws.link_used[j]) / on as f64;
                share <= next + 1e-12
            };
        }
        let mut froze = false;
        for i in 0..m {
            if !ws.active[i][0] {
                continue;
            }
            let at_kappa = ws.rates[i][0] >= kappa(i) - 1e-12;
            let binding_link = route(i).iter().copied().find(|l| ws.link_flag[l.0]);
            if at_kappa || binding_link.is_some() {
                ws.active[i][0] = false;
                ws.reasons[i][0] = Some(if at_kappa {
                    FreezeReason::MaxRate
                } else {
                    FreezeReason::Link(binding_link.unwrap())
                });
                froze = true;
                for &l in route(i) {
                    ws.link_used[l.0] += ws.rates[i][0];
                }
            }
        }
        assert!(froze, "unicast water-filling must freeze a flow per round");
    }
    ws.take_solution(iterations)
}
