//! The *min-unfavorable* ordering `≤ₘ` over ordered rate vectors
//! (Definition 2) and its threshold characterization (Lemma 2).
//!
//! For ordered (ascending) vectors `X` and `Y` of equal length, `X ≤ₘ Y`
//! ("X is min-unfavorable to Y") iff no index `i` has `x_i > y_i`, or every
//! such `i` is preceded by some `j < i` with `x_j < y_j`. The paper points
//! out this is exactly alphabetical order on strings; on ordered vectors it
//! coincides with lexicographic comparison, which is how we implement the
//! fast path. The definitional form is kept alongside and property-tested
//! equivalent, because the reproduction's claim is about the paper's
//! definition, not about lexicographic order.
//!
//! Lemma 1 states every feasible allocation is `≤ₘ` the max-min fair one;
//! Lemma 2 characterizes strict min-unfavorability by a threshold `x₀`:
//! `X <ₘ Y` iff there is an `x₀` such that for all `z < x₀` the number of
//! entries `≤ z` in `X` is at least that in `Y`, and strictly more entries
//! of `X` are `≤ x₀` than of `Y`.

use std::cmp::Ordering;

/// Tolerance for rate comparisons within the ordering. Allocator outputs are
/// exact for the paper's examples, but Monte-Carlo feasible allocations carry
/// float noise.
// mlf-lint: allow(unused-pub, reason = "documented public API; doc examples and links are invisible to the analyzer")
pub const ORD_EPS: f64 = 1e-9;

/// Sort a rate vector ascending (the "ordered vector" of Definition 2).
/// Uses [`f64::total_cmp`], so non-finite rates (a NaN leaking out of an
/// upstream model) sort deterministically instead of panicking.
pub fn ordered(rates: &[f64]) -> Vec<f64> {
    let mut v = rates.to_vec();
    v.sort_by(f64::total_cmp);
    v
}

/// Compare two *ordered* equal-length vectors under `≤ₘ`.
///
/// Returns `Ordering::Less` when `X <ₘ Y`, `Equal` when `X = Y` (within
/// [`ORD_EPS`]), `Greater` when `Y <ₘ X`. The relation is total on ordered
/// vectors of equal length (the paper notes at least one direction always
/// holds).
///
/// # Panics
///
/// Panics if the lengths differ — the ordering is only defined for
/// allocations over the same receiver set.
pub(crate) fn min_unfavorable_cmp(x: &[f64], y: &[f64]) -> Ordering {
    assert_eq!(x.len(), y.len(), "min-unfavorable needs equal lengths");
    debug_assert!(is_sorted(x) && is_sorted(y), "inputs must be ordered");
    for (a, b) in x.iter().zip(y) {
        if (a - b).abs() > ORD_EPS {
            return if a < b {
                Ordering::Less
            } else {
                Ordering::Greater
            };
        }
    }
    Ordering::Equal
}

/// `X ≤ₘ Y` on ordered vectors (non-strict).
pub fn is_min_unfavorable(x: &[f64], y: &[f64]) -> bool {
    min_unfavorable_cmp(x, y) != Ordering::Greater
}

/// `X <ₘ Y` on ordered vectors (strict: `≤ₘ` and not equal).
pub fn is_strictly_min_unfavorable(x: &[f64], y: &[f64]) -> bool {
    min_unfavorable_cmp(x, y) == Ordering::Less
}

/// The literal Definition 2 check, used to validate the lexicographic fast
/// path: `X ≤ₘ Y` iff no `i` has `x_i > y_i`, or for any such `i` there is
/// `j < i` with `x_j < y_j`.
pub fn is_min_unfavorable_definitional(x: &[f64], y: &[f64]) -> bool {
    assert_eq!(x.len(), y.len());
    for i in 0..x.len() {
        if x[i] > y[i] + ORD_EPS {
            let rescued = (0..i).any(|j| x[j] < y[j] - ORD_EPS);
            if !rescued {
                return false;
            }
        }
    }
    true
}

/// Lemma 2's threshold witness: if `X <ₘ Y`, return an `x₀` such that
///
/// * for all `z < x₀`: `|{x_i ≤ z}| ≥ |{y_i ≤ z}|`, and
/// * `|{x_i ≤ x₀}| > |{y_i ≤ x₀}|`.
///
/// Returns `None` when `X <ₘ Y` does not hold. The witness returned is
/// `x_d`, the entry at the first index where the ordered vectors differ —
/// the proof of Lemma 2 in the technical report uses exactly this value.
pub fn lemma2_threshold(x: &[f64], y: &[f64]) -> Option<f64> {
    if !is_strictly_min_unfavorable(x, y) {
        return None;
    }
    let d = x
        .iter()
        .zip(y)
        .position(|(a, b)| (a - b).abs() > ORD_EPS)
        // mlf-lint: allow(panic-unwrap, reason = "the strict-ordering branch above established that some coordinate differs by more than ORD_EPS")
        .expect("strict ordering implies a differing index");
    Some(x[d])
}

/// Count entries of an ordered vector that are `≤ z` (within tolerance).
pub(crate) fn count_at_or_below(v: &[f64], z: f64) -> usize {
    v.iter().filter(|&&a| a <= z + ORD_EPS).count()
}

/// Verify that `x0` is a valid Lemma 2 witness for `X <ₘ Y`.
pub fn verify_lemma2_witness(x: &[f64], y: &[f64], x0: f64) -> bool {
    // Candidate z values below x0 where counts can change: the entries
    // themselves.
    let below_ok = x
        .iter()
        .chain(y)
        .filter(|&&z| z < x0 - ORD_EPS)
        .all(|&z| count_at_or_below(x, z) >= count_at_or_below(y, z));
    below_ok && count_at_or_below(x, x0) > count_at_or_below(y, x0)
}

fn is_sorted(v: &[f64]) -> bool {
    // total_cmp order (the order `ordered()` produces): finite ascending,
    // then +inf, then NaN — `<=` would reject any window touching a NaN.
    v.windows(2)
        .all(|w| w[0].total_cmp(&w[1]) != Ordering::Greater || w[0] <= w[1] + ORD_EPS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reflexive_transitive_total() {
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![1.0, 2.0, 4.0];
        let c = vec![1.0, 3.0, 3.0];
        // Reflexive.
        assert!(is_min_unfavorable(&a, &a));
        // a <m b (differ at last), a <m c (differ at middle), b <m c.
        assert!(is_strictly_min_unfavorable(&a, &b));
        assert!(is_strictly_min_unfavorable(&a, &c));
        assert!(is_strictly_min_unfavorable(&b, &c));
        // Totality: one direction always holds.
        assert!(is_min_unfavorable(&b, &c) || is_min_unfavorable(&c, &b));
        // Antisymmetry of the strict form.
        assert!(!is_strictly_min_unfavorable(&c, &b));
    }

    #[test]
    fn paper_example_single_link_layered() {
        // Section 3's fixed-layer example, c = 6: allocation (c/3, c/2) =
        // (2, 3) vs (2c/3, 0) = (4, 0). Ordered: (2,3) vs (0,4):
        // (0,4) <m (2,3).
        let a = ordered(&[4.0, 0.0]);
        let b = ordered(&[2.0, 3.0]);
        assert!(is_strictly_min_unfavorable(&a, &b));
    }

    #[test]
    fn definitional_and_lexicographic_agree() {
        // Exhaustive check over small integer vectors.
        let vals = [0.0, 1.0, 2.0];
        let mut vectors = Vec::new();
        for a in vals {
            for b in vals {
                for c in vals {
                    let mut v = vec![a, b, c];
                    v.sort_by(f64::total_cmp);
                    vectors.push(v);
                }
            }
        }
        for x in &vectors {
            for y in &vectors {
                assert_eq!(
                    is_min_unfavorable(x, y),
                    is_min_unfavorable_definitional(x, y),
                    "mismatch for {x:?} vs {y:?}"
                );
            }
        }
    }

    #[test]
    fn lemma2_witness_is_valid_when_strict() {
        let x = ordered(&[1.0, 1.0, 5.0]);
        let y = ordered(&[1.0, 2.0, 3.0]);
        let x0 = lemma2_threshold(&x, &y).expect("x <m y");
        assert_eq!(x0, 1.0);
        assert!(verify_lemma2_witness(&x, &y, x0));
        // No witness when not strictly ordered.
        assert!(lemma2_threshold(&y, &x).is_none());
        assert!(lemma2_threshold(&x, &x).is_none());
    }

    #[test]
    fn count_at_or_below_counts() {
        let v = vec![1.0, 2.0, 2.0, 5.0];
        assert_eq!(count_at_or_below(&v, 0.5), 0);
        assert_eq!(count_at_or_below(&v, 2.0), 3);
        assert_eq!(count_at_or_below(&v, 10.0), 4);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn unequal_lengths_panic() {
        let _ = min_unfavorable_cmp(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn tolerance_treats_near_equal_as_equal() {
        let x = vec![1.0, 2.0];
        let y = vec![1.0 + 1e-12, 2.0 - 1e-12];
        assert_eq!(min_unfavorable_cmp(&x, &y), Ordering::Equal);
    }
}
