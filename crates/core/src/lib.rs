//! # mlf-core — multi-rate multicast max-min fairness
//!
//! The primary contribution of *"The Impact of Multicast Layering on Network
//! Fairness"* (Rubenstein, Kurose, Towsley, SIGCOMM 1999), as a library:
//!
//! * [`allocator`] — **the unified allocation API**: the [`Allocator`]
//!   trait over every regime the paper compares ([`MultiRate`],
//!   [`SingleRate`], [`Hybrid`] per-session mixes, [`Weighted`] TCP-style,
//!   [`Unicast`] Bertsekas–Gallager), all sharing scratch buffers through a
//!   reusable [`SolverWorkspace`];
//! * [`maxmin`] — the progressive-filling engine (the paper's Appendix A
//!   algorithm) computing the unique max-min fair allocation for any mix of
//!   single-rate and multi-rate sessions, generalized to arbitrary monotone
//!   session link-rate models;
//! * [`index`] — the CSR incidence structure ([`index::NetworkIndex`]) the
//!   solver hot paths iterate instead of rescanning `links × sessions ×
//!   receivers`, with incrementally maintained per-`(link, session)`
//!   aggregates in the [`SolverWorkspace`];
//! * [`mod@reference`] — the frozen pre-index engines, kept verbatim so
//!   differential tests can assert the optimized solvers are bitwise
//!   identical to them;
//! * [`linkrate`] — the session link-rate ("redundancy") functions `v_i` of
//!   Section 3: efficient (`max`), scaled, sum, and the Appendix B
//!   random-join closed form;
//! * [`allocation`] — rate allocations, induced link rates, feasibility;
//! * [`properties`] — the four desirable fairness properties of Section 2.1
//!   as executable checkers;
//! * [`ordering`] — the min-unfavorable relation `≤ₘ` (Definition 2) and
//!   Lemma 2's threshold characterization;
//! * [`mod@redundancy`] — Definition 3's redundancy measure and the Figure 6
//!   fair-rate impact model;
//! * [`theory`] — Theorems 1–2 and Lemmas 1, 3, 4 as executable checks;
//! * [`unicast`] — the textbook Bertsekas–Gallager unicast water-filling,
//!   kept implementation-independent as a differential baseline;
//! * [`weighted`] — weighted (TCP-fairness-style) multi-rate max-min, the
//!   Section 5 future-work item, implemented.
//!
//! ## Example: the four regimes through one trait
//!
//! ```
//! use mlf_core::allocator::{Allocator, Hybrid, MultiRate, SingleRate, SolverWorkspace};
//! use mlf_core::{properties, LinkRateConfig};
//!
//! let example = mlf_net::paper::figure2();
//! let net = &example.network;
//! let cfg = LinkRateConfig::efficient(net.session_count());
//!
//! // One workspace serves every solve: sweeps reuse its scratch buffers.
//! let mut ws = SolverWorkspace::new();
//!
//! // The declared regime mix (S1 single-rate) costs three properties…
//! let declared = Hybrid::as_declared().solve(net, &mut ws);
//! let report = properties::check_all(net, &cfg, &declared.allocation);
//! assert_eq!(report.count_holding(), 1);
//!
//! // …the all-multi-rate regime recovers all four (Theorem 1)…
//! let multi = MultiRate::new().solve(net, &mut ws);
//! assert!(properties::check_all(net, &cfg, &multi.allocation).all_hold());
//!
//! // …and the single-rate regime is what the declared mix collapses to.
//! let single = SingleRate::new().solve(net, &mut ws);
//! assert_eq!(declared.allocation.rates(), single.allocation.rates());
//! assert_eq!(ws.solves(), 3);
//! ```
//!
//! ## Migration note
//!
//! The pre-0.2 free functions — `max_min_allocation`,
//! `max_min_allocation_with`, `multi_rate_max_min`, `single_rate_max_min`,
//! `weighted::weighted_max_min`, `unicast::unicast_max_min` — remain as
//! thin `#[deprecated]` shims delegating to the [`Allocator`]
//! implementations above, so downstream code keeps compiling. New code
//! should use the trait (or the `Scenario` builder in the `mlf-scenario`
//! crate, which adds topology/metrics/sweep composition on top).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allocation;
pub mod allocator;
pub mod index;
pub mod linkrate;
pub mod maxmin;
pub mod metrics;
pub mod ordering;
pub mod properties;
pub mod redundancy;
// The frozen pre-refactor engines only ever change in comments, so the
// hygiene allow lives on the declaration instead of inside the module.
#[allow(clippy::unwrap_used)]
pub mod reference;
pub mod theory;
pub mod unicast;
pub mod weighted;

pub use allocation::Allocation;
pub use allocation::FeasibilityViolation;
pub use allocator::{
    Allocator, Hybrid, MultiRate, Regimes, SingleRate, SolverWorkspace, Unicast, Weighted,
};
pub use linkrate::{LinkRateConfig, LinkRateModel};
pub use maxmin::FreezeReason;
#[allow(deprecated)]
pub use maxmin::{
    max_min_allocation, max_min_allocation_with, multi_rate_max_min, single_rate_max_min,
};
pub use maxmin::{solve, MaxMinSolution};
pub use metrics::{jain_index, min_max_spread, satisfaction};
pub use ordering::{is_min_unfavorable, is_strictly_min_unfavorable, ordered};
pub use properties::{check_all, FairnessReport};
pub use redundancy::{bottleneck_fair_rate, normalized_fair_rate, redundancy};
#[allow(deprecated)]
pub use weighted::weighted_max_min;
pub use weighted::Weights;
