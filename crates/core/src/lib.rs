//! # mlf-core — multi-rate multicast max-min fairness
//!
//! The primary contribution of *"The Impact of Multicast Layering on Network
//! Fairness"* (Rubenstein, Kurose, Towsley, SIGCOMM 1999), as a library:
//!
//! * [`maxmin`] — the progressive-filling allocator (the paper's Appendix A
//!   algorithm) computing the unique max-min fair allocation for any mix of
//!   single-rate and multi-rate sessions, generalized to arbitrary monotone
//!   session link-rate models;
//! * [`linkrate`] — the session link-rate ("redundancy") functions `v_i` of
//!   Section 3: efficient (`max`), scaled, sum, and the Appendix B
//!   random-join closed form;
//! * [`allocation`] — rate allocations, induced link rates, feasibility;
//! * [`properties`] — the four desirable fairness properties of Section 2.1
//!   as executable checkers;
//! * [`ordering`] — the min-unfavorable relation `≤ₘ` (Definition 2) and
//!   Lemma 2's threshold characterization;
//! * [`mod@redundancy`] — Definition 3's redundancy measure and the Figure 6
//!   fair-rate impact model;
//! * [`theory`] — Theorems 1–2 and Lemmas 1, 3, 4 as executable checks;
//! * [`unicast`] — the textbook Bertsekas–Gallager unicast water-filling,
//!   kept implementation-independent as a differential baseline;
//! * [`weighted`] — weighted (TCP-fairness-style) multi-rate max-min, the
//!   Section 5 future-work item, implemented.
//!
//! ## Example: Figure 2 in five lines
//!
//! ```
//! use mlf_core::{maxmin, properties, linkrate::LinkRateConfig};
//!
//! let example = mlf_net::paper::figure2();
//! let alloc = maxmin::max_min_allocation(&example.network);
//! let cfg = LinkRateConfig::efficient(2);
//! let report = properties::check_all(&example.network, &cfg, &alloc);
//! // Single-rate S1 costs three of the four properties…
//! assert_eq!(report.count_holding(), 1);
//! // …and the multi-rate replacement recovers all four (Theorem 1).
//! assert!(mlf_core::theory::check_theorem1(&example.network).all_hold());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allocation;
pub mod linkrate;
pub mod maxmin;
pub mod metrics;
pub mod ordering;
pub mod properties;
pub mod redundancy;
pub mod theory;
pub mod unicast;
pub mod weighted;

pub use allocation::{Allocation, FeasibilityViolation, RATE_EPS};
pub use linkrate::{LinkRateConfig, LinkRateModel};
pub use maxmin::{
    max_min_allocation, max_min_allocation_with, multi_rate_max_min, single_rate_max_min, solve,
    FreezeReason, MaxMinSolution,
};
pub use ordering::{is_min_unfavorable, is_strictly_min_unfavorable, min_unfavorable_cmp, ordered};
pub use properties::{check_all, FairnessReport};
pub use redundancy::{bottleneck_fair_rate, normalized_fair_rate, redundancy};
pub use weighted::{weighted_max_min, Weights};
pub use metrics::{jain_index, min_max_spread, satisfaction};
