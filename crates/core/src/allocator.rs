//! The unified allocation API: one [`Allocator`] trait over every
//! allocation regime the paper compares, plus the reusable
//! [`SolverWorkspace`] that lets sweeps and simulations solve thousands of
//! networks without re-allocating scratch buffers per call.
//!
//! The paper's core result compares four regimes — multi-rate max-min
//! (Theorem 1's setting), single-rate max-min (Tzeng–Siu), weighted
//! (TCP-fairness-style, the Section 5 extension), and the textbook unicast
//! Bertsekas–Gallager baseline — plus arbitrary per-session mixes. Each is
//! an [`Allocator`] implementation here:
//!
//! | Allocator | Regime |
//! |-----------|--------|
//! | [`MultiRate`] | every session multi-rate (Theorem 1) |
//! | [`SingleRate`] | every session single-rate (Tzeng–Siu) |
//! | [`Hybrid`] | per-session regime mix (`χ` as declared, or overridden) |
//! | [`Weighted`] | weighted multi-rate max-min (`w = 1/RTT` TCP fairness) |
//! | [`Unicast`] | Bertsekas–Gallager water-filling (differential baseline) |
//!
//! # Example
//!
//! ```
//! use mlf_core::allocator::{Allocator, Hybrid, MultiRate, SolverWorkspace};
//!
//! let example = mlf_net::paper::figure2();
//! let mut ws = SolverWorkspace::new();
//!
//! // The network's declared regime mix (S1 single-rate)…
//! let declared = Hybrid::as_declared().solve(&example.network, &mut ws);
//! // …versus the all-multi-rate counterfactual, reusing the same scratch.
//! let multi = MultiRate::new().solve(&example.network, &mut ws);
//! assert!(multi.allocation.min_rate() >= declared.allocation.min_rate());
//! assert_eq!(ws.solves(), 2);
//! ```

use crate::allocation::Allocation;
use crate::index::NetworkIndex;
use crate::linkrate::{LinkRateConfig, LinkRateModel};
use crate::maxmin::{solve_in, FreezeReason, MaxMinSolution};
use crate::unicast::unicast_solve_in;
use crate::weighted::{weighted_solve_in, Weights};
use mlf_net::{Network, SessionType};

/// Reusable scratch state for the progressive-filling solvers.
///
/// A workspace owns every buffer a solve needs — per-receiver rate/active/
/// reason tables, the piecewise-linear term and breakpoint arrays, and
/// per-link scratch — so repeated [`Allocator::solve`] calls (parameter
/// sweeps, simulation loops) reuse allocations instead of re-allocating per
/// call. A workspace may be shared freely across allocators and networks of
/// different shapes; buffers are resized, not reallocated, when shapes
/// repeat.
///
/// # Incidence index and incremental aggregates
///
/// Each solve (`SolverWorkspace::reset`) rebuilds a [`NetworkIndex`] (CSR
/// link → session → receiver incidence) and, per `(link, session)` *slot*,
/// the aggregates the hot loops consume: active-receiver count,
/// frozen-rate sum, frozen-rate maximum, and (for the weighted solver) the
/// maximum weight among active receivers. Between freeze events the
/// solvers never rescan `links × sessions × receivers`; when a receiver
/// freezes, `SolverWorkspace::note_freeze` recomputes the aggregates of
/// exactly the slots on that receiver's data-path.
///
/// **The incremental-load invariant**: after every freeze, each slot's
/// aggregates equal the ascending-receiver-order fold over the live
/// `active`/`rates` tables — the same fold the pre-index engines
/// ([`crate::reference`]) performed at every point of use. Recomputing a
/// dirty slot from its receiver list (rather than incrementally patching a
/// running sum) is what keeps the floating-point results **bitwise
/// identical** to the reference: the fold order never changes, only how
/// often the fold runs.
#[derive(Debug, Default)]
pub struct SolverWorkspace {
    /// Per-receiver rates, `[session][receiver]`.
    pub(crate) rates: Vec<Vec<f64>>,
    /// Per-receiver active flags (still rising with the water level).
    pub(crate) active: Vec<Vec<bool>>,
    /// Per-receiver freeze diagnostics.
    pub(crate) reasons: Vec<Vec<Option<FreezeReason>>>,
    /// `(breakpoint, weight)` terms of a link's piecewise-linear load.
    pub(crate) terms: Vec<(f64, f64)>,
    /// Sorted breakpoint scan buffer.
    pub(crate) breakpoints: Vec<f64>,
    /// Per-call scratch rates (e.g. a session's rates on one link).
    pub(crate) scratch: Vec<f64>,
    /// Per-link accumulator (bandwidth used by frozen unicast flows).
    pub(crate) link_used: Vec<f64>,
    /// Per-link flags (binding links in the unicast solver).
    pub(crate) link_flag: Vec<bool>,
    /// The CSR incidence index of the network being solved.
    pub(crate) index: NetworkIndex,
    /// Per-slot count of active receivers.
    pub(crate) slot_active: Vec<usize>,
    /// Per-slot frozen-rate sum (ascending-receiver fold; `Sum` model).
    pub(crate) slot_frozen_sum: Vec<f64>,
    /// Per-slot frozen-rate maximum (ascending-receiver fold).
    pub(crate) slot_frozen_max: Vec<f64>,
    /// Per-slot maximum weight among active receivers (weighted solver
    /// only; left zeroed by the unweighted engines).
    pub(crate) slot_wmax: Vec<f64>,
    /// Per-link count of active receivers crossing the link.
    pub(crate) link_active: Vec<usize>,
    /// Per-session count of active receivers.
    pub(crate) session_active: Vec<usize>,
    /// Total count of active receivers.
    pub(crate) active_total: usize,
    solves: u64,
}

impl SolverWorkspace {
    /// A fresh, empty workspace.
    pub fn new() -> Self {
        SolverWorkspace::default()
    }

    /// How many solves this workspace has served (telemetry for benches).
    pub fn solves(&self) -> u64 {
        self.solves
    }

    /// Size the per-receiver tables for `net` and reset them to the
    /// progressive-filling start state (all rates 0, everyone active).
    /// Inner buffers are reused whenever shapes repeat.
    pub(crate) fn reset(&mut self, net: &Network) {
        let m = net.session_count();
        self.rates.resize_with(m, Vec::new);
        self.active.resize_with(m, Vec::new);
        self.reasons.resize_with(m, Vec::new);
        for (i, s) in net.sessions().iter().enumerate() {
            let k = s.receivers.len();
            self.rates[i].clear();
            self.rates[i].resize(k, 0.0);
            self.active[i].clear();
            self.active[i].resize(k, true);
            self.reasons[i].clear();
            self.reasons[i].resize(k, None);
        }
        self.link_used.clear();
        self.link_used.resize(net.link_count(), 0.0);
        self.link_flag.clear();
        self.link_flag.resize(net.link_count(), false);

        // Incidence index + per-slot aggregates for the hot loops: all
        // receivers start active, so frozen aggregates are zero and the
        // active counts are the slot/link/session receiver totals.
        self.index.rebuild(net);
        let slots = self.index.slot_count();
        self.slot_active.clear();
        self.slot_frozen_sum.clear();
        self.slot_frozen_sum.resize(slots, 0.0);
        self.slot_frozen_max.clear();
        self.slot_frozen_max.resize(slots, 0.0);
        self.slot_wmax.clear();
        self.slot_wmax.resize(slots, 0.0);
        for slot in 0..slots {
            self.slot_active.push(self.index.slot_len(slot));
        }
        self.link_active.clear();
        for j in 0..net.link_count() {
            let on_link = self
                .index
                .link_slots(j)
                .map(|slot| self.index.slot_len(slot))
                .sum();
            self.link_active.push(on_link);
        }
        self.session_active.clear();
        self.session_active
            .extend(net.sessions().iter().map(|s| s.receivers.len()));
        self.active_total = net.receiver_count();
        self.solves += 1;
    }

    /// Account a just-frozen receiver `(i, k)`: decrement the active
    /// counters and recompute the frozen aggregates of every slot on the
    /// receiver's data-path by the ascending-receiver fold (see the
    /// incremental-load invariant in the type docs). The caller must have
    /// already cleared `active[i][k]` and stored the final rate in
    /// `rates[i][k]`.
    pub(crate) fn note_freeze(&mut self, i: usize, k: usize) {
        debug_assert!(!self.active[i][k], "freeze bookkeeping before the flag");
        self.session_active[i] -= 1;
        self.active_total -= 1;
        let flat = self.index.flat(i, k);
        for &(j, slot) in self.index.route_slots(flat) {
            self.link_active[j] -= 1;
            let mut active = 0usize;
            let mut frozen_sum = 0.0_f64;
            let mut frozen_max = 0.0_f64;
            for &kk in self.index.slot_receivers(slot) {
                if self.active[i][kk] {
                    active += 1;
                } else {
                    frozen_sum += self.rates[i][kk];
                    frozen_max = frozen_max.max(self.rates[i][kk]);
                }
            }
            self.slot_active[slot] = active;
            self.slot_frozen_sum[slot] = frozen_sum;
            self.slot_frozen_max[slot] = frozen_max;
        }
    }

    /// [`SolverWorkspace::note_freeze`] plus maintenance of the per-slot
    /// active-weight maximum the weighted solver reads (`slot_wmax`).
    pub(crate) fn note_freeze_weighted(&mut self, i: usize, k: usize, weights: &[Vec<f64>]) {
        self.note_freeze(i, k);
        let flat = self.index.flat(i, k);
        for &(_, slot) in self.index.route_slots(flat) {
            let mut wmax = 0.0_f64;
            for &kk in self.index.slot_receivers(slot) {
                if self.active[i][kk] {
                    wmax = wmax.max(weights[i][kk]);
                }
            }
            self.slot_wmax[slot] = wmax;
        }
    }

    /// Package the frozen state as a [`MaxMinSolution`] (the only
    /// allocations a warm solve performs are for this owned output).
    pub(crate) fn take_solution(&self, iterations: usize) -> MaxMinSolution {
        MaxMinSolution {
            allocation: Allocation::from_rates(self.rates.clone()),
            reasons: self
                .reasons
                .iter()
                .map(|rs| {
                    rs.iter()
                        // mlf-lint: allow(panic-unwrap, reason = "the progressive-filling loop only returns after every receiver froze; a None reason here is an allocator bug")
                        .map(|r| r.expect("every receiver froze"))
                        .collect()
                })
                .collect(),
            iterations,
        }
    }
}

/// How session types (`χ` in the paper) are chosen for a solve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Regimes {
    /// Use each session's declared [`SessionType`].
    AsDeclared,
    /// Treat every session as the given type.
    Uniform(SessionType),
    /// Explicit per-session types (length must equal the session count).
    PerSession(Vec<SessionType>),
}

impl Regimes {
    /// The effective type of session `i` in `net`.
    pub(crate) fn kind(&self, net: &Network, i: usize) -> SessionType {
        match self {
            Regimes::AsDeclared => net.sessions()[i].kind,
            Regimes::Uniform(k) => *k,
            Regimes::PerSession(ks) => ks[i],
        }
    }

    fn check(&self, net: &Network) {
        if let Regimes::PerSession(ks) = self {
            assert_eq!(
                ks.len(),
                net.session_count(),
                "per-session regime list must cover every session"
            );
        }
    }
}

/// A max-min fair allocation solver for one regime of the paper.
///
/// Implementations are cheap, immutable specs; all mutable state lives in
/// the caller's [`SolverWorkspace`], so one allocator can serve many
/// networks concurrently (one workspace per thread) and sweeps can reuse
/// scratch across solves. The `Send + Sync` bound makes that concurrency
/// real: a `&dyn Allocator` can be shared across `std::thread::scope`
/// workers, each solving with its own workspace — the substrate of
/// `mlf-scenario`'s parallel sweep executor.
pub trait Allocator: Send + Sync {
    /// Compute the regime's unique max-min fair allocation of `net`,
    /// with per-receiver freeze diagnostics.
    fn solve(&self, net: &Network, ws: &mut SolverWorkspace) -> MaxMinSolution;

    /// Convenience one-shot solve returning just the allocation.
    fn allocate(&self, net: &Network) -> Allocation {
        self.solve(net, &mut SolverWorkspace::new()).allocation
    }

    /// Solve under an explicit link-rate configuration, overriding any the
    /// allocator carries. Returns `None` for allocators whose regime has no
    /// link-rate parameterization ([`Weighted`] and [`Unicast`] are defined
    /// for the efficient model only) — callers that need the override, like
    /// `Scenario` model sweeps, treat `None` as a configuration error.
    fn solve_with(
        &self,
        net: &Network,
        cfg: &LinkRateConfig,
        ws: &mut SolverWorkspace,
    ) -> Option<MaxMinSolution> {
        let _ = (net, cfg, ws);
        None
    }

    /// Whether [`Allocator::solve_with`] honours a link-rate configuration.
    fn supports_link_rates(&self) -> bool {
        false
    }

    /// A short regime label for reports and benches.
    fn name(&self) -> &'static str {
        "allocator"
    }

    /// A stable textual identity of everything about this allocator that
    /// can change a solve's bits: the regime and any carried link-rate
    /// configuration, with float parameters spelled as exact bit patterns.
    ///
    /// Two allocators with equal signatures produce bitwise-equal
    /// solutions for the same network and link-rate inputs, which is what
    /// lets scenarios that differ only in *reporting* (label, layering
    /// ladder) share one solve cache. Return `None` when the identity is
    /// not cheaply representable (e.g. explicit per-receiver weights) —
    /// shared caches then simply bypass memoization for that scenario
    /// rather than risk serving another configuration's bits.
    fn cache_signature(&self) -> Option<String> {
        None
    }
}

/// Render a [`LinkRateConfig`] for [`Allocator::cache_signature`]:
/// per-session model tags with parameters as exact `f64` bit patterns.
fn signature_of_cfg(cfg: &LinkRateConfig) -> String {
    let mut out = String::from("[");
    for i in 0..cfg.len() {
        if i > 0 {
            out.push(',');
        }
        match cfg.model(i) {
            LinkRateModel::Efficient => out.push_str("eff"),
            LinkRateModel::Sum => out.push_str("sum"),
            LinkRateModel::Scaled(v) => {
                out.push_str("scaled:");
                out.push_str(&v.to_bits().to_string());
            }
            LinkRateModel::RandomJoin { sigma } => {
                out.push_str("rj:");
                out.push_str(&sigma.to_bits().to_string());
            }
        }
    }
    out.push(']');
    out
}

/// The common shape of most regime signatures: `name` plus the carried
/// configuration (or `@eff` when the allocator solves the efficient model).
fn signature_with_cfg(name: &str, cfg: Option<&LinkRateConfig>) -> String {
    match cfg {
        None => format!("{name}@eff"),
        Some(c) => format!("{name}@{}", signature_of_cfg(c)),
    }
}

fn solve_regime(
    net: &Network,
    cfg: Option<&LinkRateConfig>,
    regimes: &Regimes,
    ws: &mut SolverWorkspace,
) -> MaxMinSolution {
    regimes.check(net);
    match cfg {
        Some(cfg) => solve_in(net, cfg, regimes, ws),
        None => solve_in(
            net,
            &LinkRateConfig::efficient(net.session_count()),
            regimes,
            ws,
        ),
    }
}

/// Every session treated as multi-rate (Theorem 1's setting).
#[derive(Debug, Clone, Default)]
pub struct MultiRate {
    cfg: Option<LinkRateConfig>,
}

impl MultiRate {
    /// Multi-rate max-min under the efficient link-rate model.
    pub fn new() -> Self {
        MultiRate { cfg: None }
    }

    /// Multi-rate max-min under explicit per-session link-rate models.
    pub fn with_config(cfg: LinkRateConfig) -> Self {
        MultiRate { cfg: Some(cfg) }
    }
}

impl Allocator for MultiRate {
    fn solve(&self, net: &Network, ws: &mut SolverWorkspace) -> MaxMinSolution {
        solve_regime(
            net,
            self.cfg.as_ref(),
            &Regimes::Uniform(SessionType::MultiRate),
            ws,
        )
    }

    fn solve_with(
        &self,
        net: &Network,
        cfg: &LinkRateConfig,
        ws: &mut SolverWorkspace,
    ) -> Option<MaxMinSolution> {
        Some(solve_regime(
            net,
            Some(cfg),
            &Regimes::Uniform(SessionType::MultiRate),
            ws,
        ))
    }

    fn supports_link_rates(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "multi-rate"
    }

    fn cache_signature(&self) -> Option<String> {
        Some(signature_with_cfg("multi-rate", self.cfg.as_ref()))
    }
}

/// Every session treated as single-rate (the Tzeng–Siu setting).
#[derive(Debug, Clone, Default)]
pub struct SingleRate {
    cfg: Option<LinkRateConfig>,
}

impl SingleRate {
    /// Single-rate max-min under the efficient link-rate model.
    pub fn new() -> Self {
        SingleRate { cfg: None }
    }

    /// Single-rate max-min under explicit per-session link-rate models.
    pub fn with_config(cfg: LinkRateConfig) -> Self {
        SingleRate { cfg: Some(cfg) }
    }
}

impl Allocator for SingleRate {
    fn solve(&self, net: &Network, ws: &mut SolverWorkspace) -> MaxMinSolution {
        solve_regime(
            net,
            self.cfg.as_ref(),
            &Regimes::Uniform(SessionType::SingleRate),
            ws,
        )
    }

    fn solve_with(
        &self,
        net: &Network,
        cfg: &LinkRateConfig,
        ws: &mut SolverWorkspace,
    ) -> Option<MaxMinSolution> {
        Some(solve_regime(
            net,
            Some(cfg),
            &Regimes::Uniform(SessionType::SingleRate),
            ws,
        ))
    }

    fn supports_link_rates(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "single-rate"
    }

    fn cache_signature(&self) -> Option<String> {
        Some(signature_with_cfg("single-rate", self.cfg.as_ref()))
    }
}

/// A per-session regime mix: the general solver of the paper's Section 2,
/// honouring (or overriding) each session's declared type.
#[derive(Debug, Clone)]
pub struct Hybrid {
    regimes: Regimes,
    cfg: Option<LinkRateConfig>,
}

impl Hybrid {
    /// Solve with each session's declared type and efficient link rates —
    /// the regime of the legacy `max_min_allocation` entry point.
    pub fn as_declared() -> Self {
        Hybrid {
            regimes: Regimes::AsDeclared,
            cfg: None,
        }
    }

    /// Solve with explicit per-session types (overriding the declared `χ`).
    pub fn new(kinds: Vec<SessionType>) -> Self {
        Hybrid {
            regimes: Regimes::PerSession(kinds),
            cfg: None,
        }
    }

    /// Use explicit per-session link-rate models (the Section 3 setting).
    pub fn with_config(mut self, cfg: LinkRateConfig) -> Self {
        self.cfg = Some(cfg);
        self
    }
}

impl Default for Hybrid {
    fn default() -> Self {
        Hybrid::as_declared()
    }
}

impl Allocator for Hybrid {
    fn solve(&self, net: &Network, ws: &mut SolverWorkspace) -> MaxMinSolution {
        solve_regime(net, self.cfg.as_ref(), &self.regimes, ws)
    }

    fn solve_with(
        &self,
        net: &Network,
        cfg: &LinkRateConfig,
        ws: &mut SolverWorkspace,
    ) -> Option<MaxMinSolution> {
        Some(solve_regime(net, Some(cfg), &self.regimes, ws))
    }

    fn supports_link_rates(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "hybrid"
    }

    fn cache_signature(&self) -> Option<String> {
        let regimes = match &self.regimes {
            Regimes::AsDeclared => "declared".to_string(),
            Regimes::Uniform(t) => format!("uniform:{t:?}"),
            Regimes::PerSession(kinds) => format!("per-session:{kinds:?}"),
        };
        Some(format!(
            "{}|{}",
            signature_with_cfg("hybrid", self.cfg.as_ref()),
            regimes
        ))
    }
}

/// Weighted multi-rate max-min fairness (the Section 5 TCP-fairness
/// extension): max-min over the normalized rates `a / w`.
#[derive(Debug, Clone)]
pub struct Weighted {
    weights: WeightSpec,
}

#[derive(Debug, Clone)]
enum WeightSpec {
    Uniform,
    Explicit(Weights),
}

impl Weighted {
    /// Explicit per-receiver weights (shape-checked at solve time).
    pub fn new(weights: Weights) -> Self {
        Weighted {
            weights: WeightSpec::Explicit(weights),
        }
    }

    /// Uniform weights — reduces to the ordinary multi-rate max-min, which
    /// makes this the differential twin of [`MultiRate`] on multi-rate
    /// networks.
    pub fn uniform() -> Self {
        Weighted {
            weights: WeightSpec::Uniform,
        }
    }

    /// TCP-style weights from per-receiver round-trip times (`w = 1/RTT`).
    // mlf-lint: allow(unused-pub, reason = "intentional API surface kept public alongside its siblings")
    pub fn from_rtts(rtts: Vec<Vec<f64>>) -> Self {
        Weighted::new(Weights::from_rtts(rtts))
    }
}

impl Allocator for Weighted {
    fn solve(&self, net: &Network, ws: &mut SolverWorkspace) -> MaxMinSolution {
        match &self.weights {
            WeightSpec::Uniform => weighted_solve_in(net, &Weights::uniform(net), ws),
            WeightSpec::Explicit(w) => weighted_solve_in(net, w, ws),
        }
    }

    fn name(&self) -> &'static str {
        "weighted"
    }

    /// Uniform weights have a stable identity; explicit per-receiver
    /// weights are deliberately unrepresentable (`None`), so shared caches
    /// bypass rather than fingerprint a large float matrix.
    fn cache_signature(&self) -> Option<String> {
        match &self.weights {
            WeightSpec::Uniform => Some("weighted@uniform".to_string()),
            WeightSpec::Explicit(_) => None,
        }
    }
}

/// The textbook Bertsekas–Gallager unicast water-filling, kept
/// implementation-independent from the general solver as a differential
/// baseline. Panics (as the legacy free function did) if any session has
/// more than one receiver.
#[derive(Debug, Clone, Copy, Default)]
pub struct Unicast;

impl Unicast {
    /// The unicast baseline allocator.
    pub fn new() -> Self {
        Unicast
    }
}

impl Allocator for Unicast {
    fn solve(&self, net: &Network, ws: &mut SolverWorkspace) -> MaxMinSolution {
        unicast_solve_in(net, ws)
    }

    fn name(&self) -> &'static str {
        "unicast"
    }

    fn cache_signature(&self) -> Option<String> {
        Some("unicast@eff".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlf_net::topology::random_network;
    use mlf_net::{Graph, Session};

    fn tree() -> Network {
        let mut g = Graph::new();
        let n = g.add_nodes(4);
        g.add_link(n[0], n[1], 6.0).unwrap();
        g.add_link(n[1], n[2], 4.0).unwrap();
        g.add_link(n[1], n[3], 2.0).unwrap();
        Network::new(g, vec![Session::multi_rate(n[0], vec![n[2], n[3]])]).unwrap()
    }

    #[test]
    fn regimes_pick_session_kinds() {
        let net = tree();
        let multi = MultiRate::new().allocate(&net);
        assert_eq!(multi.rates(), &[vec![4.0, 2.0]]);
        let single = SingleRate::new().allocate(&net);
        assert_eq!(single.rates(), &[vec![2.0, 2.0]]);
        let hybrid = Hybrid::new(vec![SessionType::SingleRate]).allocate(&net);
        assert_eq!(hybrid.rates(), single.rates());
        let declared = Hybrid::as_declared().allocate(&net);
        assert_eq!(declared.rates(), multi.rates());
    }

    #[test]
    fn workspace_reuse_is_transparent() {
        let mut ws = SolverWorkspace::new();
        for seed in 0..10u64 {
            let net = random_network(seed, 12, 4, 4).unwrap();
            let warm = Hybrid::as_declared().solve(&net, &mut ws);
            let cold = Hybrid::as_declared().allocate(&net);
            assert_eq!(warm.allocation.rates(), cold.rates(), "seed {seed}");
        }
        assert_eq!(ws.solves(), 10);
    }

    #[test]
    fn workspace_survives_shape_changes() {
        let mut ws = SolverWorkspace::new();
        let small = tree();
        let big = random_network(3, 20, 6, 5).unwrap();
        let a1 = MultiRate::new().solve(&small, &mut ws).allocation;
        let _ = MultiRate::new().solve(&big, &mut ws);
        let a2 = MultiRate::new().solve(&small, &mut ws).allocation;
        assert_eq!(a1.rates(), a2.rates());
    }

    #[test]
    fn weighted_uniform_matches_multi_rate() {
        let mut ws = SolverWorkspace::new();
        for seed in 0..10u64 {
            let net = random_network(seed, 10, 4, 4).unwrap();
            let w = Weighted::uniform().solve(&net, &mut ws).allocation;
            let m = MultiRate::new().solve(&net, &mut ws).allocation;
            for (a, b) in w.rates().iter().flatten().zip(m.rates().iter().flatten()) {
                assert!((a - b).abs() < 1e-9, "seed {seed}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn unicast_matches_hybrid_on_unicast_networks() {
        let mut g = Graph::new();
        let n = g.add_nodes(3);
        g.add_link(n[0], n[1], 10.0).unwrap();
        g.add_link(n[1], n[2], 6.0).unwrap();
        let net = Network::new(
            g,
            vec![
                Session::unicast(n[0], n[2]),
                Session::unicast(n[0], n[1]),
                Session::unicast(n[1], n[2]),
            ],
        )
        .unwrap();
        let mut ws = SolverWorkspace::new();
        let bg = Unicast::new().solve(&net, &mut ws);
        assert_eq!(bg.allocation.rates(), &[vec![3.0], vec![7.0], vec![3.0]]);
        let general = Hybrid::as_declared().solve(&net, &mut ws);
        assert_eq!(bg.allocation.rates(), general.allocation.rates());
    }

    /// The parallel sweep substrate: workspaces move into worker threads,
    /// allocators are shared across them by reference.
    #[test]
    fn workspaces_are_send_and_allocators_are_shareable() {
        fn assert_send<T: Send>() {}
        fn assert_sync<T: Sync + ?Sized>() {}
        assert_send::<SolverWorkspace>();
        assert_sync::<dyn Allocator>();
        assert_send::<Box<dyn Allocator>>();

        // One shared allocator, one workspace per scoped thread; every
        // thread's result is bitwise identical to the serial one.
        let allocator = Hybrid::as_declared();
        let net = random_network(5, 16, 5, 4).unwrap();
        let serial = allocator.solve(&net, &mut SolverWorkspace::new());
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let (a, n) = (&allocator, &net);
                    scope.spawn(move || a.solve(n, &mut SolverWorkspace::new()))
                })
                .collect();
            for h in handles {
                let parallel = h.join().expect("worker");
                assert_eq!(parallel.allocation.rates(), serial.allocation.rates());
            }
        });
    }

    #[test]
    fn allocators_are_object_safe() {
        let net = tree();
        let mut ws = SolverWorkspace::new();
        let allocators: Vec<Box<dyn Allocator>> = vec![
            Box::new(MultiRate::new()),
            Box::new(SingleRate::new()),
            Box::new(Hybrid::as_declared()),
            Box::new(Weighted::uniform()),
        ];
        for a in &allocators {
            let sol = a.solve(&net, &mut ws);
            assert!(!a.name().is_empty());
            assert!(sol.allocation.min_rate() > 0.0);
        }
    }
}
