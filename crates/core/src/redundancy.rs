//! Redundancy (Definition 3) and its analytic impact on fair rates
//! (Section 3.1, Figure 6).
//!
//! The *redundancy* of link `l_j` for session `S_i` is
//! `u_{i,j} / max{a_{i,k} : r_{i,k} ∈ R_{i,j}}` — the ratio of the
//! bandwidth the session actually uses on the link to the theoretical
//! minimum needed to deliver the downstream receivers' rates. A session's
//! bandwidth use on a link is *efficient* when the redundancy is 1.
//!
//! Section 3.1 quantifies the damage: with `n` sessions bottlenecked on one
//! link of capacity `c`, `m` of which exhibit redundancy `v` (the rest
//! efficient), every receiver's max-min fair rate is `c / ((n−m) + m·v)`.
//! Figure 6 plots this normalized by the all-efficient rate `c/n`.

use crate::allocation::Allocation;
use crate::linkrate::LinkRateConfig;
use mlf_net::{LinkId, Network, SessionId};

/// The measured redundancy of `link` for `session` under an allocation and
/// link-rate configuration; `None` when the session has no receivers
/// downstream of the link or all of them have zero rate (redundancy is then
/// undefined).
pub fn redundancy(
    net: &Network,
    cfg: &LinkRateConfig,
    alloc: &Allocation,
    link: LinkId,
    session: SessionId,
) -> Option<f64> {
    let rates = alloc.rates_on_link(net, link, session);
    let max = rates.iter().copied().fold(0.0_f64, f64::max);
    if rates.is_empty() || max <= 0.0 {
        return None;
    }
    Some(cfg.model(session.0).link_rate(&rates) / max)
}

/// Measured redundancy from observed byte counts: `carried / max_received`
/// over a measurement interval. This is the estimator the packet-level
/// simulator reports (Definition 3 with long-term averages).
// mlf-lint: allow(unused-pub, reason = "intentional API surface kept public alongside its siblings")
pub fn redundancy_from_counts(session_bytes_on_link: f64, max_receiver_bytes: f64) -> Option<f64> {
    if max_receiver_bytes <= 0.0 {
        return None;
    }
    Some(session_bytes_on_link / max_receiver_bytes)
}

/// A network-wide redundancy survey: every `(link, session)` pair with a
/// defined redundancy, useful for audits and the examples.
// mlf-lint: allow(unused-pub, reason = "documented public API; doc examples and links are invisible to the analyzer")
pub fn survey(
    net: &Network,
    cfg: &LinkRateConfig,
    alloc: &Allocation,
) -> Vec<(LinkId, SessionId, f64)> {
    let mut out = Vec::new();
    for j in 0..net.link_count() {
        for i in 0..net.session_count() {
            if let Some(r) = redundancy(net, cfg, alloc, LinkId(j), SessionId(i)) {
                out.push((LinkId(j), SessionId(i), r));
            }
        }
    }
    out
}

/// The worst (largest) redundancy any session exhibits on any link.
pub fn max_redundancy(net: &Network, cfg: &LinkRateConfig, alloc: &Allocation) -> f64 {
    survey(net, cfg, alloc)
        .into_iter()
        .map(|(_, _, r)| r)
        .fold(1.0, f64::max)
}

/// Section 3.1's single-bottleneck fair rate: `n` sessions share a link of
/// capacity `c`; `m` of them have redundancy `v ≥ 1`, the rest are
/// efficient. Every receiver's max-min fair rate is `c / ((n−m) + m·v)`.
///
/// # Panics
///
/// Panics if `m > n`, `n == 0`, or `v < 1`.
pub fn bottleneck_fair_rate(capacity: f64, n_sessions: usize, m_redundant: usize, v: f64) -> f64 {
    assert!(n_sessions > 0, "need at least one session");
    assert!(m_redundant <= n_sessions, "m must not exceed n");
    assert!(v >= 1.0, "redundancy is at least 1");
    capacity / ((n_sessions - m_redundant) as f64 + m_redundant as f64 * v)
}

/// Figure 6's y-axis: the bottleneck fair rate normalized by the
/// all-efficient rate `c/n`, i.e. `n / ((n−m) + m·v)`. Depends only on the
/// ratio `m/n` and `v`: `1 / (1 − f + f·v)` for `f = m/n`.
pub fn normalized_fair_rate(fraction_redundant: f64, v: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&fraction_redundant),
        "fraction must be in [0,1]"
    );
    assert!(v >= 1.0, "redundancy is at least 1");
    1.0 / (1.0 - fraction_redundant + fraction_redundant * v)
}

/// One row of the Figure 6 sweep: redundancy value plus normalized fair rate
/// for each `m/n` curve.
// mlf-lint: allow(unused-pub, reason = "reachable through public fn signatures and returned values; the ident-based usage scan cannot see type flow")
#[derive(Debug, Clone, PartialEq)]
pub struct Figure6Row {
    /// The redundancy `v` (x-axis).
    pub v: f64,
    /// Normalized fair rates, one per requested `m/n` fraction.
    pub normalized_rates: Vec<f64>,
}

/// Regenerate the Figure 6 series: redundancy swept over `[1, v_max]` in
/// `steps` points for each `m/n` fraction. The paper plots
/// `m/n ∈ {0.01, 0.05, 0.1, 1}` over `v ∈ [1, 10]`.
pub fn figure6_series(fractions: &[f64], v_max: f64, steps: usize) -> Vec<Figure6Row> {
    assert!(steps >= 2 && v_max >= 1.0);
    (0..steps)
        .map(|t| {
            let v = 1.0 + (v_max - 1.0) * t as f64 / (steps - 1) as f64;
            Figure6Row {
                v,
                normalized_rates: fractions
                    .iter()
                    .map(|&f| normalized_fair_rate(f, v))
                    .collect(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linkrate::{LinkRateConfig, LinkRateModel};
    use mlf_net::{Graph, Session};

    #[test]
    fn measured_redundancy_matches_model() {
        // Shared hub link with two receivers of one session.
        let mut g = Graph::new();
        let n = g.add_nodes(4);
        g.add_link(n[0], n[1], 100.0).unwrap();
        g.add_link(n[1], n[2], 100.0).unwrap();
        g.add_link(n[1], n[3], 100.0).unwrap();
        let net = Network::new(g, vec![Session::multi_rate(n[0], vec![n[2], n[3]])]).unwrap();
        let alloc = Allocation::from_rates(vec![vec![2.0, 1.0]]);

        let eff = LinkRateConfig::efficient(1);
        assert_eq!(
            redundancy(&net, &eff, &alloc, LinkId(0), SessionId(0)),
            Some(1.0)
        );
        let scaled = LinkRateConfig::uniform(1, LinkRateModel::Scaled(2.0));
        assert_eq!(
            redundancy(&net, &scaled, &alloc, LinkId(0), SessionId(0)),
            Some(2.0)
        );
        // Tail links have a single receiver: efficient even under Scaled.
        assert_eq!(
            redundancy(&net, &scaled, &alloc, LinkId(1), SessionId(0)),
            Some(1.0)
        );
        let sum = LinkRateConfig::uniform(1, LinkRateModel::Sum);
        assert_eq!(
            redundancy(&net, &sum, &alloc, LinkId(0), SessionId(0)),
            Some(1.5)
        );
        assert_eq!(max_redundancy(&net, &sum, &alloc), 1.5);
    }

    #[test]
    fn undefined_redundancy_is_none() {
        let mut g = Graph::new();
        let n = g.add_nodes(2);
        g.add_link(n[0], n[1], 1.0).unwrap();
        let net = Network::new(g, vec![Session::unicast(n[0], n[1])]).unwrap();
        let cfg = LinkRateConfig::efficient(1);
        let zero = Allocation::from_rates(vec![vec![0.0]]);
        assert_eq!(redundancy(&net, &cfg, &zero, LinkId(0), SessionId(0)), None);
        assert_eq!(redundancy_from_counts(10.0, 0.0), None);
        assert_eq!(redundancy_from_counts(10.0, 5.0), Some(2.0));
    }

    #[test]
    fn bottleneck_formula_matches_paper() {
        // All efficient: c/n.
        assert_eq!(bottleneck_fair_rate(10.0, 5, 0, 1.0), 2.0);
        // All redundant at v: c/(n v).
        assert!((bottleneck_fair_rate(10.0, 5, 5, 2.0) - 1.0).abs() < 1e-12);
        // Mixed: c / ((n-m) + m v) = 10 / (3 + 2*3) = 10/9.
        assert!((bottleneck_fair_rate(10.0, 5, 2, 3.0) - 10.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn normalized_rate_figure6_endpoints() {
        // v = 1: no harm regardless of fraction.
        for f in [0.01, 0.05, 0.1, 1.0] {
            assert!((normalized_fair_rate(f, 1.0) - 1.0).abs() < 1e-12);
        }
        // m/n = 1: rate is 1/v.
        assert!((normalized_fair_rate(1.0, 10.0) - 0.1).abs() < 1e-12);
        // m/n = 0.01, v = 10: 1/(0.99 + 0.1) ≈ 0.917 — barely hurt.
        let r = normalized_fair_rate(0.01, 10.0);
        assert!(r > 0.9 && r < 1.0);
        // Monotone decreasing in v and in the fraction.
        assert!(normalized_fair_rate(0.1, 2.0) > normalized_fair_rate(0.1, 3.0));
        assert!(normalized_fair_rate(0.05, 5.0) > normalized_fair_rate(0.1, 5.0));
    }

    #[test]
    fn figure6_series_shape() {
        let rows = figure6_series(&[0.01, 0.05, 0.1, 1.0], 10.0, 10);
        assert_eq!(rows.len(), 10);
        assert_eq!(rows[0].v, 1.0);
        assert_eq!(rows[9].v, 10.0);
        for row in &rows {
            assert_eq!(row.normalized_rates.len(), 4);
            // Curves are ordered: higher fraction, lower rate (for v > 1).
            if row.v > 1.0 {
                for w in row.normalized_rates.windows(2) {
                    assert!(w[0] >= w[1]);
                }
            }
        }
    }

    #[test]
    fn redundancy_consistent_with_allocator_output() {
        // The Figure 6 scenario end-to-end: 4 unicasts + 1 redundant
        // 2-receiver session on one bottleneck. n=5, m=1, v=2:
        // rate = 12 / (4 + 2) = 2.
        let mut g = Graph::new();
        let s = g.add_node();
        let hub = g.add_node();
        g.add_link(s, hub, 12.0).unwrap();
        let r1 = g.add_node();
        let r2 = g.add_node();
        g.add_link(hub, r1, 1000.0).unwrap();
        g.add_link(hub, r2, 1000.0).unwrap();
        let mut sessions = vec![Session::multi_rate(s, vec![r1, r2])];
        for _ in 0..4 {
            sessions.push(Session::unicast(s, hub));
        }
        let net = Network::new(g, sessions).unwrap();
        let cfg = LinkRateConfig::efficient(5).with_session(0, LinkRateModel::Scaled(2.0));
        let alloc = crate::maxmin::solve(&net, &cfg).allocation;
        let expected = bottleneck_fair_rate(12.0, 5, 1, 2.0);
        for (_, rate) in alloc.iter() {
            assert!((rate - expected).abs() < 1e-9, "rate {rate} != {expected}");
        }
    }
}
