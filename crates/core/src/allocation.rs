//! Receiver-rate allocations and their induced link rates.
//!
//! An *allocation* assigns a rate `a_{i,k}` to every receiver `r_{i,k}` in a
//! network (Section 2). Given a per-session link-rate model `v_i`, the
//! allocation induces session link rates `u_{i,j} = v_i({a_{i,k} : r_{i,k} ∈
//! R_{i,j}})` and link rates `u_j = Σ_i u_{i,j}`. An allocation is *feasible*
//! when `0 ≤ a_{i,k} ≤ κ_i` for every receiver, single-rate sessions have
//! uniform receiver rates, and `u_j ≤ c_j` on every link.

use crate::linkrate::LinkRateConfig;
use mlf_net::{LinkId, Network, ReceiverId, SessionId};

/// Tolerance used for feasibility and full-utilization comparisons.
/// Rates in the paper's examples are small integers or simple fractions, so
/// a relative tolerance is unnecessary.
pub(crate) const RATE_EPS: f64 = 1e-9;

/// An assignment of rates to every receiver of a network, shaped
/// `[session][receiver]` to mirror [`Network`]'s layout.
#[derive(Debug, Clone, PartialEq)]
pub struct Allocation {
    rates: Vec<Vec<f64>>,
}

impl Allocation {
    /// Build an allocation from explicit rates. The shape must match the
    /// network it will be used with; shape errors surface on first access.
    pub fn from_rates(rates: Vec<Vec<f64>>) -> Self {
        Allocation { rates }
    }

    /// The all-zeros allocation for a network.
    // mlf-lint: allow(unused-pub, reason = "documented public API; doc examples and links are invisible to the analyzer")
    pub fn zeros(net: &Network) -> Self {
        Allocation {
            rates: net
                .sessions()
                .iter()
                .map(|s| vec![0.0; s.receivers.len()])
                .collect(),
        }
    }

    /// The rate `a_{i,k}` of a receiver.
    pub fn rate(&self, r: ReceiverId) -> f64 {
        self.rates[r.session.0][r.index]
    }

    /// Set the rate of a receiver.
    pub(crate) fn set_rate(&mut self, r: ReceiverId, rate: f64) {
        self.rates[r.session.0][r.index] = rate;
    }

    /// Raw rates, `[session][receiver]`.
    pub fn rates(&self) -> &[Vec<f64>] {
        &self.rates
    }

    /// Iterate over `(ReceiverId, rate)` pairs, session-major.
    pub fn iter(&self) -> impl Iterator<Item = (ReceiverId, f64)> + '_ {
        self.rates.iter().enumerate().flat_map(|(i, rs)| {
            rs.iter()
                .enumerate()
                .map(move |(k, &a)| (ReceiverId::new(i, k), a))
        })
    }

    /// Total number of receivers.
    pub fn receiver_count(&self) -> usize {
        self.rates.iter().map(Vec::len).sum()
    }

    /// The rates of session `i`'s receivers whose data-path crosses `link`
    /// (the argument set of `v_i` on that link).
    pub(crate) fn rates_on_link(
        &self,
        net: &Network,
        link: LinkId,
        session: SessionId,
    ) -> Vec<f64> {
        net.receivers_of_session_on_link(link, session)
            .iter()
            .map(|&k| self.rates[session.0][k])
            .collect()
    }

    /// The session link rate `u_{i,j} = v_i({a_{i,k} : r_{i,k} ∈ R_{i,j}})`.
    pub fn session_link_rate(
        &self,
        net: &Network,
        cfg: &LinkRateConfig,
        link: LinkId,
        session: SessionId,
    ) -> f64 {
        let rates = self.rates_on_link(net, link, session);
        cfg.model(session.0).link_rate(&rates)
    }

    /// The link rate `u_j = Σ_i u_{i,j}`.
    pub fn link_rate(&self, net: &Network, cfg: &LinkRateConfig, link: LinkId) -> f64 {
        (0..net.session_count())
            .map(|i| self.session_link_rate(net, cfg, link, SessionId(i)))
            .sum()
    }

    /// All link rates, indexed by link id.
    pub fn link_rates(&self, net: &Network, cfg: &LinkRateConfig) -> Vec<f64> {
        (0..net.link_count())
            .map(|j| self.link_rate(net, cfg, LinkId(j)))
            .collect()
    }

    /// Whether link `j` is fully utilized (`u_j = c_j` within tolerance).
    pub fn is_fully_utilized(&self, net: &Network, cfg: &LinkRateConfig, link: LinkId) -> bool {
        self.link_rate(net, cfg, link) >= net.graph().capacity(link) - RATE_EPS
    }

    /// Feasibility check (Section 2): rates within `[0, κ_i]`, single-rate
    /// sessions uniform, and no link over capacity.
    pub fn is_feasible(&self, net: &Network, cfg: &LinkRateConfig) -> bool {
        self.feasibility_violation(net, cfg).is_none()
    }

    /// Like [`Allocation::is_feasible`] but reports the first violation
    /// found, for diagnostics in tests and examples.
    pub fn feasibility_violation(
        &self,
        net: &Network,
        cfg: &LinkRateConfig,
    ) -> Option<FeasibilityViolation> {
        if self.rates.len() != net.session_count() {
            return Some(FeasibilityViolation::ShapeMismatch);
        }
        for (i, s) in net.sessions().iter().enumerate() {
            if self.rates[i].len() != s.receivers.len() {
                return Some(FeasibilityViolation::ShapeMismatch);
            }
            for (k, &a) in self.rates[i].iter().enumerate() {
                if !a.is_finite() || a < -RATE_EPS {
                    return Some(FeasibilityViolation::NegativeRate(ReceiverId::new(i, k)));
                }
                if a > s.max_rate + RATE_EPS {
                    return Some(FeasibilityViolation::ExceedsMaxRate(ReceiverId::new(i, k)));
                }
            }
            if s.kind.is_single_rate() {
                let first = self.rates[i][0];
                for (k, &a) in self.rates[i].iter().enumerate() {
                    if (a - first).abs() > RATE_EPS {
                        return Some(FeasibilityViolation::SingleRateMismatch(ReceiverId::new(
                            i, k,
                        )));
                    }
                }
            }
        }
        for j in 0..net.link_count() {
            let link = LinkId(j);
            let u = self.link_rate(net, cfg, link);
            if u > net.graph().capacity(link) + RATE_EPS {
                return Some(FeasibilityViolation::OverCapacity {
                    link,
                    rate: u,
                    capacity: net.graph().capacity(link),
                });
            }
        }
        None
    }

    /// The *ordered vector* of all receiver rates (ascending), the object
    /// the min-unfavorable ordering of Definition 2 compares.
    pub fn ordered_vector(&self) -> Vec<f64> {
        let mut v: Vec<f64> = self.rates.iter().flatten().copied().collect();
        // total_cmp keeps the sort NaN-safe: a non-finite rate produced by
        // an upstream model sorts last instead of panicking the sweep.
        v.sort_by(f64::total_cmp);
        v
    }

    /// The uniform rate of a single-rate (or unicast) session, written `a_i`
    /// in the paper. Panics if called on a multi-receiver multi-rate session
    /// with non-uniform rates — a logic error in the caller.
    // mlf-lint: allow(unused-pub, reason = "intentional API surface kept public alongside its siblings")
    pub fn session_rate(&self, session: SessionId) -> f64 {
        let rs = &self.rates[session.0];
        let first = rs[0];
        debug_assert!(
            rs.iter().all(|&a| (a - first).abs() <= RATE_EPS),
            "session_rate on a session with non-uniform receiver rates"
        );
        first
    }

    /// Sum of all receiver rates (a coarse efficiency/throughput metric used
    /// in experiment reporting; not a fairness criterion).
    pub fn total_rate(&self) -> f64 {
        self.rates.iter().flatten().sum()
    }

    /// The smallest receiver rate.
    pub fn min_rate(&self) -> f64 {
        self.rates
            .iter()
            .flatten()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }
}

/// A specific way an allocation violates feasibility.
// mlf-lint: allow(unused-pub, reason = "reachable through public fn signatures and returned values; the ident-based usage scan cannot see type flow")
#[derive(Debug, Clone, PartialEq)]
pub enum FeasibilityViolation {
    /// Allocation shape does not match the network.
    ShapeMismatch,
    /// A receiver has a negative (or non-finite) rate.
    NegativeRate(ReceiverId),
    /// A receiver exceeds its session's maximum desired rate `κ_i`.
    ExceedsMaxRate(ReceiverId),
    /// A single-rate session has receivers at different rates.
    SingleRateMismatch(ReceiverId),
    /// A link carries more than its capacity.
    OverCapacity {
        /// The overloaded link.
        link: LinkId,
        /// The induced link rate `u_j`.
        rate: f64,
        /// The capacity `c_j`.
        capacity: f64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linkrate::LinkRateModel;
    use mlf_net::{Graph, Session};

    /// sender(n0) --l0:6-- hub(n1) --l1:4-- n2 ; hub --l2:2-- n3
    fn tree() -> Network {
        let mut g = Graph::new();
        let n = g.add_nodes(4);
        g.add_link(n[0], n[1], 6.0).unwrap();
        g.add_link(n[1], n[2], 4.0).unwrap();
        g.add_link(n[1], n[3], 2.0).unwrap();
        Network::new(g, vec![Session::multi_rate(n[0], vec![n[2], n[3]])]).unwrap()
    }

    #[test]
    fn link_rates_under_efficient_model_use_max() {
        let net = tree();
        let cfg = LinkRateConfig::efficient(1);
        let alloc = Allocation::from_rates(vec![vec![4.0, 2.0]]);
        // Shared first hop carries the max of the two receiver rates.
        assert_eq!(alloc.link_rate(&net, &cfg, LinkId(0)), 4.0);
        assert_eq!(alloc.link_rate(&net, &cfg, LinkId(1)), 4.0);
        assert_eq!(alloc.link_rate(&net, &cfg, LinkId(2)), 2.0);
        assert!(alloc.is_feasible(&net, &cfg));
        assert!(alloc.is_fully_utilized(&net, &cfg, LinkId(1)));
        assert!(alloc.is_fully_utilized(&net, &cfg, LinkId(2)));
        assert!(!alloc.is_fully_utilized(&net, &cfg, LinkId(0)));
    }

    #[test]
    fn sum_model_can_overload_the_shared_link() {
        let net = tree();
        let cfg = LinkRateConfig::uniform(1, LinkRateModel::Sum);
        let alloc = Allocation::from_rates(vec![vec![4.0, 2.0]]);
        assert_eq!(alloc.link_rate(&net, &cfg, LinkId(0)), 6.0);
        assert!(alloc.is_feasible(&net, &cfg));
        let alloc = Allocation::from_rates(vec![vec![4.0, 2.1]]);
        assert!(matches!(
            alloc.feasibility_violation(&net, &cfg),
            Some(FeasibilityViolation::OverCapacity {
                link: LinkId(0),
                ..
            })
        ));
    }

    #[test]
    fn feasibility_catches_each_violation_kind() {
        let net = tree();
        let cfg = LinkRateConfig::efficient(1);
        assert!(matches!(
            Allocation::from_rates(vec![vec![-1.0, 0.0]]).feasibility_violation(&net, &cfg),
            Some(FeasibilityViolation::NegativeRate(_))
        ));
        assert!(matches!(
            Allocation::from_rates(vec![vec![0.0]]).feasibility_violation(&net, &cfg),
            Some(FeasibilityViolation::ShapeMismatch)
        ));
        // κ violation.
        let mut g = Graph::new();
        let n = g.add_nodes(2);
        g.add_link(n[0], n[1], 10.0).unwrap();
        let net2 = Network::new(g, vec![Session::unicast(n[0], n[1]).with_max_rate(1.0)]).unwrap();
        assert!(matches!(
            Allocation::from_rates(vec![vec![2.0]])
                .feasibility_violation(&net2, &LinkRateConfig::efficient(1)),
            Some(FeasibilityViolation::ExceedsMaxRate(_))
        ));
    }

    #[test]
    fn single_rate_sessions_must_be_uniform() {
        let mut g = Graph::new();
        let n = g.add_nodes(3);
        g.add_link(n[0], n[1], 10.0).unwrap();
        g.add_link(n[0], n[2], 10.0).unwrap();
        let net = Network::new(g, vec![Session::single_rate(n[0], vec![n[1], n[2]])]).unwrap();
        let cfg = LinkRateConfig::efficient(1);
        assert!(Allocation::from_rates(vec![vec![2.0, 2.0]]).is_feasible(&net, &cfg));
        assert!(matches!(
            Allocation::from_rates(vec![vec![2.0, 3.0]]).feasibility_violation(&net, &cfg),
            Some(FeasibilityViolation::SingleRateMismatch(_))
        ));
    }

    #[test]
    fn ordered_vector_sorts_ascending() {
        let alloc = Allocation::from_rates(vec![vec![3.0, 1.0], vec![2.0]]);
        assert_eq!(alloc.ordered_vector(), vec![1.0, 2.0, 3.0]);
        assert_eq!(alloc.total_rate(), 6.0);
        assert_eq!(alloc.min_rate(), 1.0);
        assert_eq!(alloc.receiver_count(), 3);
    }

    #[test]
    fn zeros_matches_network_shape() {
        let net = tree();
        let z = Allocation::zeros(&net);
        assert_eq!(z.rates(), &[vec![0.0, 0.0]]);
        assert!(z.is_feasible(&net, &LinkRateConfig::efficient(1)));
    }

    #[test]
    fn iter_and_setters_round_trip() {
        let net = tree();
        let mut a = Allocation::zeros(&net);
        a.set_rate(ReceiverId::new(0, 1), 2.5);
        assert_eq!(a.rate(ReceiverId::new(0, 1)), 2.5);
        let collected: Vec<_> = a.iter().collect();
        assert_eq!(collected[1], (ReceiverId::new(0, 1), 2.5));
    }
}
