//! Executable versions of the paper's theorems and lemmas.
//!
//! Each function checks one result of Section 2/3 on a concrete network and
//! returns whether it held, so both the unit tests and the property-based
//! integration tests can sweep randomized networks through them:
//!
//! * Theorem 1 — a multi-rate max-min fair allocation satisfies all four
//!   fairness properties.
//! * Theorem 2 — per-part fairness guarantees in mixed-type networks.
//! * Lemma 1 — every feasible allocation is min-unfavorable to the max-min
//!   fair allocation (checked against sampled feasible allocations).
//! * Lemma 3 / Corollary 1 — flipping single-rate sessions to multi-rate
//!   makes the max-min fair allocation weakly more max-min fair.
//! * Lemma 4 — pointwise-larger redundancy functions make it weakly less
//!   max-min fair.

use crate::allocation::{Allocation, RATE_EPS};
use crate::linkrate::LinkRateConfig;
use crate::maxmin::solve;
use crate::ordering::{is_min_unfavorable, ordered};
use crate::properties::{self, FairnessReport};
use mlf_net::topology::SplitMix64;
use mlf_net::{Network, ReceiverId, SessionType};

/// Check Theorem 1 on a network: flip every session to multi-rate, compute
/// the max-min fair allocation under efficient link rates, and verify all
/// four fairness properties hold. Returns the report (callers assert
/// `report.all_hold()`).
pub fn check_theorem1(net: &Network) -> FairnessReport {
    let multi = net.with_uniform_kind(SessionType::MultiRate);
    let cfg = LinkRateConfig::efficient(multi.session_count());
    let alloc = solve(&multi, &cfg).allocation;
    properties::check_all(&multi, &cfg, &alloc)
}

/// The per-part outcome of Theorem 2 on a mixed-type network.
// mlf-lint: allow(unused-pub, reason = "reachable through public fn signatures and returned values; the ident-based usage scan cannot see type flow")
#[derive(Debug, Clone)]
pub struct Theorem2Outcome {
    /// (a) fully-utilized-receiver-fairness holds for every receiver of a
    /// multi-rate session.
    pub part_a: bool,
    /// (b) per-receiver-link-fairness holds for every multi-rate session.
    pub part_b: bool,
    /// (c) per-session-link-fairness holds for all sessions.
    pub part_c: bool,
    /// (d) same-path-receiver-fairness holds between multi-rate receivers.
    pub part_d: bool,
    /// (e) a multi-rate receiver sharing a path with a single-rate receiver
    /// is at `κ` or at least as fast.
    pub part_e: bool,
}

impl Theorem2Outcome {
    /// All five parts hold.
    pub fn all_hold(&self) -> bool {
        self.part_a && self.part_b && self.part_c && self.part_d && self.part_e
    }
}

/// Check Theorem 2 on the network's *given* session-type mapping, under
/// efficient link rates.
pub fn check_theorem2(net: &Network) -> Theorem2Outcome {
    let cfg = LinkRateConfig::efficient(net.session_count());
    let alloc = solve(net, &cfg).allocation;
    let report = properties::check_all(net, &cfg, &alloc);
    let is_multi = |r: ReceiverId| net.session(r.session).kind.is_multi_rate();

    let part_a = report
        .fully_utilized_violations
        .iter()
        .all(|&r| !is_multi(r));
    let part_b = report
        .per_receiver_link_violations
        .iter()
        .all(|&r| !is_multi(r));
    let part_c = report.per_session_link_violations.is_empty();
    let part_d = report
        .same_path_violations
        .iter()
        .all(|&(a, b)| !(is_multi(a) && is_multi(b)));

    // Part (e): multi-rate receiver r vs single-rate receiver r' on an
    // identical data-path: a_r = κ or a_r >= a_r'.
    let mut part_e = true;
    let receivers: Vec<ReceiverId> = net.receivers().collect();
    for &a in &receivers {
        if !is_multi(a) {
            continue;
        }
        for &b in &receivers {
            if is_multi(b) || !net.same_data_path(a, b) {
                continue;
            }
            let ra = alloc.rate(a);
            let rb = alloc.rate(b);
            let kappa = net.session(a.session).max_rate;
            if !(ra >= kappa - RATE_EPS || ra >= rb - RATE_EPS) {
                part_e = false;
            }
        }
    }
    Theorem2Outcome {
        part_a,
        part_b,
        part_c,
        part_d,
        part_e,
    }
}

/// Sample a random *feasible* allocation for the network: draw uniform rates
/// (uniformized per single-rate session), then scale the whole allocation
/// down until every link fits. Used to exercise Lemma 1.
///
/// Only valid for link-rate models that are positively homogeneous
/// (`Efficient`, `Scaled`, `Sum` — scaling all rates by `t` scales `u` by
/// `t`), which is what the Section 2 lemmas assume.
pub fn random_feasible_allocation(
    net: &Network,
    cfg: &LinkRateConfig,
    rng: &mut SplitMix64,
) -> Allocation {
    debug_assert!(cfg.all_piecewise_linear(), "needs homogeneous models");
    let mut rates: Vec<Vec<f64>> = Vec::with_capacity(net.session_count());
    for s in net.sessions() {
        if s.kind.is_single_rate() {
            let a = rng.unit() * s.max_rate.min(100.0);
            rates.push(vec![a; s.receivers.len()]);
        } else {
            rates.push(
                (0..s.receivers.len())
                    .map(|_| rng.unit() * s.max_rate.min(100.0))
                    .collect(),
            );
        }
    }
    let mut alloc = Allocation::from_rates(rates);
    // Scale down to fit the tightest link.
    let mut worst: f64 = 1.0;
    for j in 0..net.link_count() {
        let link = mlf_net::LinkId(j);
        let u = alloc.link_rate(net, cfg, link);
        let c = net.graph().capacity(link);
        if u > c {
            worst = worst.max(u / c);
        }
    }
    if worst > 1.0 {
        let scale = 1.0 / (worst * (1.0 + 1e-12));
        let scaled: Vec<Vec<f64>> = alloc
            .rates()
            .iter()
            .map(|rs| rs.iter().map(|a| a * scale).collect())
            .collect();
        alloc = Allocation::from_rates(scaled);
    }
    debug_assert!(alloc.is_feasible(net, cfg));
    alloc
}

/// Check Lemma 1 on a network: `trials` random feasible allocations must all
/// be min-unfavorable to the max-min fair allocation. Returns `true` when
/// every sample satisfied `B ≤ₘ A`.
pub fn check_lemma1(net: &Network, cfg: &LinkRateConfig, trials: usize, seed: u64) -> bool {
    let maxmin = ordered(&solve(net, cfg).allocation.ordered_vector());
    let mut rng = SplitMix64(seed);
    (0..trials).all(|_| {
        let b = random_feasible_allocation(net, cfg, &mut rng);
        is_min_unfavorable(&b.ordered_vector(), &maxmin)
    })
}

/// Check Lemma 3 on a network: for every single-rate session, flipping it to
/// multi-rate must make the max-min fair allocation weakly more max-min fair
/// (`A_before ≤ₘ A_after`). Also checks the full flip (Corollary 1).
/// Efficient link rates throughout.
pub fn check_lemma3(net: &Network) -> bool {
    let cfg = LinkRateConfig::efficient(net.session_count());
    let before = solve(net, &cfg).allocation.ordered_vector();
    let mut ok = true;
    for (sid, s) in net.sessions_iter() {
        if s.kind.is_single_rate() {
            let flipped = net.with_session_kind(sid, SessionType::MultiRate);
            let after = solve(&flipped, &cfg).allocation.ordered_vector();
            ok &= is_min_unfavorable(&before, &after);
        }
    }
    // Corollary 1: the all-multi-rate network dominates everything.
    let all_multi = net.with_uniform_kind(SessionType::MultiRate);
    let best = solve(&all_multi, &cfg).allocation.ordered_vector();
    ok && is_min_unfavorable(&before, &best)
}

/// Check Lemma 4 on a network: if `high` dominates `low` sessionwise
/// (pointwise-larger redundancy functions), the max-min allocation under
/// `high` must be min-unfavorable to the one under `low`.
pub fn check_lemma4(net: &Network, low: &LinkRateConfig, high: &LinkRateConfig) -> bool {
    assert!(
        high.dominates(low),
        "lemma 4 premise: high must dominate low"
    );
    let a_low = solve(net, low).allocation.ordered_vector();
    let a_high = solve(net, high).allocation.ordered_vector();
    is_min_unfavorable(&a_high, &a_low)
}

/// Section 2.5's single-session monotonicity (Lemma 9 of the technical
/// report): flipping exactly one session from single-rate to multi-rate
/// (all other types fixed) must not decrease any of *that session's*
/// receiver rates. Returns `true` if the property held for every
/// single-rate session of the network.
pub fn check_single_session_flip_monotonicity(net: &Network) -> bool {
    let cfg = LinkRateConfig::efficient(net.session_count());
    let before = solve(net, &cfg).allocation;
    let mut ok = true;
    for (sid, s) in net.sessions_iter() {
        if !s.kind.is_single_rate() {
            continue;
        }
        let flipped = net.with_session_kind(sid, SessionType::MultiRate);
        let after = solve(&flipped, &cfg).allocation;
        for k in 0..s.receivers.len() {
            let r = ReceiverId::new(sid.0, k);
            if after.rate(r) < before.rate(r) - 1e-6 {
                ok = false;
            }
        }
    }
    ok
}

/// A definition-level max-min spot check: verify via the allocator's output
/// that no receiver's rate can be increased in a way the max-min definition
/// forbids. For each receiver we test the single most favorable deviation —
/// raising it by `delta` while lowering only receivers with strictly larger
/// rates — and confirm even that is infeasible or forces a decrease of a
/// receiver at or below its rate. This is a necessary condition of
/// Definition 1 that catches allocator bugs cheaply.
pub fn spot_check_maxmin(net: &Network, cfg: &LinkRateConfig, alloc: &Allocation) -> bool {
    let sol = solve(net, cfg);
    debug_assert!({
        // The allocator is deterministic; the caller usually passes its own
        // output back in. If not, fall back to comparing vectors.
        let _ = &sol;
        true
    });
    for r in net.receivers() {
        let a = alloc.rate(r);
        let kappa = net.session(r.session).max_rate;
        if a >= kappa - RATE_EPS {
            continue;
        }
        // The receiver must be blocked by some saturated link on its path
        // where it is marginal; otherwise raising it alone stays feasible
        // and violates max-min fairness.
        let mut blocked = false;
        for &l in net.route(r) {
            if !alloc.is_fully_utilized(net, cfg, l) {
                continue;
            }
            // Marginal: bumping this receiver raises u_{i,j} on l.
            let mut bumped = alloc.clone();
            bumped.set_rate(r, a + 1e-6);
            let before = alloc.session_link_rate(net, cfg, l, r.session);
            let after = bumped.session_link_rate(net, cfg, l, r.session);
            if after > before + RATE_EPS * 1e-3 {
                blocked = true;
                break;
            }
        }
        // Single-rate sessions are additionally blocked through their
        // session-mates (raising one receiver forces raising all).
        if !blocked && net.session(r.session).kind.is_single_rate() {
            blocked = net.sessions()[r.session.0]
                .receivers
                .iter()
                .enumerate()
                .any(|(k, _)| {
                    let mate = ReceiverId::new(r.session.0, k);
                    net.route(mate).iter().any(|&l| {
                        alloc.is_fully_utilized(net, cfg, l) && {
                            let mut bumped = alloc.clone();
                            bumped.set_rate(mate, alloc.rate(mate) + 1e-6);
                            bumped.session_link_rate(net, cfg, l, r.session)
                                > alloc.session_link_rate(net, cfg, l, r.session) + RATE_EPS * 1e-3
                        }
                    })
                });
        }
        if !blocked {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linkrate::LinkRateModel;
    use mlf_net::topology::random_network;

    #[test]
    fn theorem1_on_random_trees() {
        for seed in 0..25u64 {
            let net = random_network(seed, 12, 4, 4).unwrap();
            let report = check_theorem1(&net);
            assert!(
                report.all_hold(),
                "seed {seed}: theorem 1 violated: {report:?}"
            );
        }
    }

    #[test]
    fn theorem2_on_random_mixed_networks() {
        for seed in 0..25u64 {
            let mut net = random_network(seed, 12, 5, 4).unwrap();
            // Flip sessions 0 and 2 single-rate.
            net = net.with_session_kind(mlf_net::SessionId(0), SessionType::SingleRate);
            net = net.with_session_kind(mlf_net::SessionId(2), SessionType::SingleRate);
            let outcome = check_theorem2(&net);
            assert!(outcome.all_hold(), "seed {seed}: {outcome:?}");
        }
    }

    #[test]
    fn lemma1_on_random_networks() {
        for seed in 0..10u64 {
            let net = random_network(seed, 10, 3, 3).unwrap();
            let cfg = LinkRateConfig::efficient(net.session_count());
            assert!(check_lemma1(&net, &cfg, 50, seed * 7 + 1), "seed {seed}");
        }
    }

    #[test]
    fn lemma1_with_single_rate_sessions() {
        for seed in 0..10u64 {
            let net = random_network(seed, 10, 3, 3)
                .unwrap()
                .with_session_kind(mlf_net::SessionId(0), SessionType::SingleRate);
            let cfg = LinkRateConfig::efficient(net.session_count());
            assert!(check_lemma1(&net, &cfg, 50, seed + 99), "seed {seed}");
        }
    }

    #[test]
    fn lemma3_on_random_networks() {
        for seed in 0..15u64 {
            let net = random_network(seed, 10, 4, 4)
                .unwrap()
                .with_session_kind(mlf_net::SessionId(0), SessionType::SingleRate)
                .with_session_kind(mlf_net::SessionId(1), SessionType::SingleRate);
            assert!(check_lemma3(&net), "seed {seed}");
        }
    }

    #[test]
    fn lemma4_scaled_vs_efficient() {
        for seed in 0..15u64 {
            let net = random_network(seed, 10, 4, 4).unwrap();
            let low = LinkRateConfig::efficient(net.session_count());
            let high = LinkRateConfig::uniform(net.session_count(), LinkRateModel::Scaled(2.0));
            assert!(check_lemma4(&net, &low, &high), "seed {seed}");
            let higher = LinkRateConfig::uniform(net.session_count(), LinkRateModel::Scaled(3.0));
            assert!(check_lemma4(&net, &high, &higher), "seed {seed}");
        }
    }

    #[test]
    fn single_session_flip_monotonicity() {
        for seed in 0..15u64 {
            let net = random_network(seed, 10, 4, 4)
                .unwrap()
                .with_session_kind(mlf_net::SessionId(0), SessionType::SingleRate);
            assert!(check_single_session_flip_monotonicity(&net), "seed {seed}");
        }
    }

    #[test]
    fn spot_check_accepts_allocator_output_and_rejects_slack() {
        let net = random_network(3, 10, 3, 3).unwrap();
        let cfg = LinkRateConfig::efficient(net.session_count());
        let alloc = solve(&net, &cfg).allocation;
        assert!(spot_check_maxmin(&net, &cfg, &alloc));
        // Halving all rates leaves slack everywhere: not max-min.
        let halved = Allocation::from_rates(
            alloc
                .rates()
                .iter()
                .map(|rs| rs.iter().map(|a| a / 2.0).collect())
                .collect(),
        );
        assert!(!spot_check_maxmin(&net, &cfg, &halved));
    }

    #[test]
    fn random_feasible_allocations_are_feasible() {
        let mut rng = SplitMix64(5);
        for seed in 0..10u64 {
            let net = random_network(seed, 10, 3, 3)
                .unwrap()
                .with_session_kind(mlf_net::SessionId(0), SessionType::SingleRate);
            let cfg = LinkRateConfig::efficient(net.session_count());
            for _ in 0..20 {
                let alloc = random_feasible_allocation(&net, &cfg, &mut rng);
                assert!(alloc.is_feasible(&net, &cfg), "seed {seed}");
            }
        }
    }
}
