//! The max-min fair allocator: progressive filling for arbitrary mixes of
//! single-rate and multi-rate sessions (Appendix A of the paper),
//! generalized to arbitrary monotone session link-rate models (Section 3).
//!
//! The preferred entry points are the [`crate::allocator::Allocator`]
//! implementations ([`crate::allocator::MultiRate`],
//! [`crate::allocator::SingleRate`], [`crate::allocator::Hybrid`], …),
//! which share scratch buffers through a
//! [`crate::allocator::SolverWorkspace`]. The free functions in this module
//! predate that API and remain as thin deprecated shims; [`solve`] is the
//! low-level one-shot engine entry they and the trait both reach.
//!
//! # Algorithm
//!
//! All receivers start active at rate 0. A global *water level* rises; every
//! active receiver's rate equals the level. A receiver freezes when
//!
//! 1. its session's maximum desired rate `κ_i` is reached, or
//! 2. a link on its data-path is fully utilized **and** raising this
//!    receiver's rate would raise the link's load, or
//! 3. (single-rate sessions only) any other receiver of its session froze —
//!    all receivers of a single-rate session must hold the same rate
//!    (step 7 of the paper's algorithm).
//!
//! Condition 2's "would raise the load" clause matters for multi-rate
//! sessions under the efficient model `u_{i,j} = max{a_{i,k}}`: a receiver
//! whose session-mates already pushed the session's link rate above the
//! current level can keep riding the saturated link *for free* until the
//! level reaches the session's frozen maximum on that link. (The algorithm
//! as printed in the paper's appendix elides this case; without it the
//! produced allocation would violate Definition 1 — a free rider's rate
//! could be raised without decreasing anyone — and would break Theorem 1 on
//! networks like Figure 3(b), where `r_{3,1}` must ride `l_1` past
//! `r_{1,1}`'s frozen rate.)
//!
//! Between freezing events the level advances in closed form: for the
//! piecewise-linear models (`Efficient`, `Scaled`, `Sum`) each link's load is
//! `K + Σ_i w_i · max(b_i, ℓ)` in the level `ℓ`, whose saturation point is
//! found exactly by scanning breakpoints; the nonlinear `RandomJoin` model
//! falls back to bisection. Every iteration freezes at least one receiver,
//! so the loop runs at most `#receivers` times.
//!
//! # Implementation: incidence index + incremental aggregates
//!
//! The hot loops run on the [`crate::index::NetworkIndex`] CSR incidence
//! structure held by the workspace: per link, only the sessions that
//! actually cross it are visited (in ascending session order), and each
//! `(link, session)` slot's frozen-rate sum/maximum and active count are
//! maintained incrementally — when a receiver freezes,
//! `SolverWorkspace::note_freeze` re-folds exactly the slots on that
//! receiver's data-path, in the same ascending-receiver order a full
//! rescan would use. The result is **bitwise identical** to the
//! pre-index engine preserved in [`crate::reference`] (asserted by the
//! `incidence_differential` proptest suite); see the invariant note on
//! [`SolverWorkspace`] for why. `Sum` and `RandomJoin` loads still re-fold
//! their receiver lists at evaluation points — their accumulation order is
//! part of the bitwise contract — but only over the link's own receivers,
//! never over every session in the network.

use crate::allocation::{Allocation, RATE_EPS};
use crate::allocator::{Regimes, SolverWorkspace};
use crate::linkrate::{LinkRateConfig, LinkRateModel};
use mlf_net::{LinkId, Network, ReceiverId};

/// Why a receiver's rate froze at its final value.
// mlf-lint: allow(unused-pub, reason = "reachable through public fn signatures and returned values; the ident-based usage scan cannot see type flow")
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FreezeReason {
    /// The session's maximum desired rate `κ_i` (or the layer rate `σ` for
    /// `RandomJoin` sessions) was reached.
    MaxRate,
    /// This link on the receiver's data-path saturated while the receiver
    /// was marginal on it.
    Link(LinkId),
    /// A session-mate froze and the session is single-rate (step 7).
    SessionClosure,
}

/// The allocator's output: the unique max-min fair allocation plus
/// per-receiver diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct MaxMinSolution {
    /// The max-min fair allocation.
    pub allocation: Allocation,
    /// Why each receiver froze, shaped `[session][receiver]`.
    pub reasons: Vec<Vec<FreezeReason>>,
    /// Number of water-filling iterations performed.
    pub iterations: usize,
}

impl MaxMinSolution {
    /// The freeze reason for a receiver.
    pub fn reason(&self, r: ReceiverId) -> FreezeReason {
        self.reasons[r.session.0][r.index]
    }

    /// The bottleneck link of a receiver, if it froze on a link.
    pub fn bottleneck(&self, r: ReceiverId) -> Option<LinkId> {
        match self.reason(r) {
            FreezeReason::Link(l) => Some(l),
            _ => None,
        }
    }
}

/// Compute the max-min fair allocation under the efficient link-rate model
/// (`u_{i,j} = max` — the Section 2 setting) for the network's session-type
/// mapping as given.
#[deprecated(
    since = "0.2.0",
    note = "use `allocator::Hybrid::as_declared()` via the `Allocator` trait \
            (or a `Scenario` from the mlf-scenario crate)"
)]
pub fn max_min_allocation(net: &Network) -> Allocation {
    solve(net, &LinkRateConfig::efficient(net.session_count())).allocation
}

/// Compute the max-min fair allocation under explicit per-session link-rate
/// models (the Section 3 setting).
#[deprecated(
    since = "0.2.0",
    note = "use `allocator::Hybrid::as_declared().with_config(cfg)` via the \
            `Allocator` trait"
)]
pub fn max_min_allocation_with(net: &Network, cfg: &LinkRateConfig) -> Allocation {
    solve(net, cfg).allocation
}

/// The multi-rate max-min fair allocation: every session treated as
/// multi-rate (Theorem 1's setting), efficient link rates.
#[deprecated(
    since = "0.2.0",
    note = "use `allocator::MultiRate::new()` via the `Allocator` trait"
)]
pub fn multi_rate_max_min(net: &Network) -> Allocation {
    let mut ws = SolverWorkspace::new();
    solve_in(
        net,
        &LinkRateConfig::efficient(net.session_count()),
        &Regimes::Uniform(mlf_net::SessionType::MultiRate),
        &mut ws,
    )
    .allocation
}

/// The single-rate max-min fair allocation: every session treated as
/// single-rate (the Tzeng–Siu setting), efficient link rates.
#[deprecated(
    since = "0.2.0",
    note = "use `allocator::SingleRate::new()` via the `Allocator` trait"
)]
pub fn single_rate_max_min(net: &Network) -> Allocation {
    let mut ws = SolverWorkspace::new();
    solve_in(
        net,
        &LinkRateConfig::efficient(net.session_count()),
        &Regimes::Uniform(mlf_net::SessionType::SingleRate),
        &mut ws,
    )
    .allocation
}

/// One-shot progressive-filling solve with diagnostics, honouring each
/// session's declared type. The low-level engine entry: allocates a fresh
/// workspace per call. Prefer the [`crate::allocator::Allocator`] trait with
/// a reused [`SolverWorkspace`] in sweeps and other hot paths.
pub fn solve(net: &Network, cfg: &LinkRateConfig) -> MaxMinSolution {
    solve_in(net, cfg, &Regimes::AsDeclared, &mut SolverWorkspace::new())
}

/// Progressive filling into a caller-provided workspace, with an explicit
/// session-type regime. The engine behind every [`crate::allocator`]
/// implementation except `Weighted` and `Unicast`.
pub(crate) fn solve_in(
    net: &Network,
    cfg: &LinkRateConfig,
    regimes: &Regimes,
    ws: &mut SolverWorkspace,
) -> MaxMinSolution {
    assert_eq!(
        cfg.len(),
        net.session_count(),
        "link-rate config must cover every session"
    );
    ws.reset(net);
    let mut state = State {
        net,
        cfg,
        regimes,
        ws,
        level: 0.0,
    };
    let mut iterations = 0;
    while state.any_active() {
        iterations += 1;
        assert!(
            iterations <= net.receiver_count() + 1,
            "progressive filling failed to converge (tolerance breakdown?)"
        );
        state.step();
    }
    ws.take_solution(iterations)
}

/// Water-filling pass over workspace-held state.
struct State<'a> {
    net: &'a Network,
    cfg: &'a LinkRateConfig,
    regimes: &'a Regimes,
    ws: &'a mut SolverWorkspace,
    level: f64,
}

impl State<'_> {
    fn any_active(&self) -> bool {
        self.ws.active_total > 0
    }

    fn session_has_active(&self, i: usize) -> bool {
        self.ws.session_active[i] > 0
    }

    fn single_rate(&self, i: usize) -> bool {
        self.regimes.kind(self.net, i).is_single_rate()
    }

    /// The effective rate cap of session `i`: `κ_i`, additionally clamped to
    /// the layer rate `σ` for `RandomJoin` sessions (a receiver cannot take
    /// more than the layer carries).
    fn effective_kappa(&self, i: usize) -> f64 {
        let kappa = self.net.sessions()[i].max_rate;
        match *self.cfg.model(i) {
            LinkRateModel::RandomJoin { sigma } => kappa.min(sigma),
            _ => kappa,
        }
    }

    /// One progressive-filling event: advance the level to the next freezing
    /// point and freeze every receiver that binds there.
    fn step(&mut self) {
        let upper = (0..self.net.session_count())
            .filter(|&i| self.session_has_active(i))
            .map(|i| self.effective_kappa(i))
            .fold(f64::INFINITY, f64::min);
        debug_assert!(upper.is_finite(), "session max rates are finite");

        // The next level is the smallest saturation level over all links
        // (clamped to `upper`).
        let mut next = upper;
        for j in 0..self.net.link_count() {
            if self.ws.link_active[j] == 0 {
                continue;
            }
            let lj = self.link_saturation_level(j, upper);
            next = next.min(lj);
        }
        debug_assert!(
            next >= self.level - RATE_EPS,
            "water level must not decrease"
        );
        self.level = next.max(self.level);

        // Raise every active receiver to the new level.
        for i in 0..self.ws.rates.len() {
            for k in 0..self.ws.rates[i].len() {
                if self.ws.active[i][k] {
                    self.ws.rates[i][k] = self.level;
                }
            }
        }

        let mut froze_any = false;

        // κ freezes.
        for i in 0..self.net.session_count() {
            if self.session_has_active(i) && self.effective_kappa(i) <= self.level + RATE_EPS {
                let kappa = self.effective_kappa(i);
                for k in 0..self.ws.rates[i].len() {
                    if self.ws.active[i][k] {
                        self.ws.active[i][k] = false;
                        self.ws.rates[i][k] = kappa;
                        self.ws.reasons[i][k] = Some(FreezeReason::MaxRate);
                        self.ws.note_freeze(i, k);
                        froze_any = true;
                    }
                }
            }
        }

        // Link freezes: saturated links freeze their marginal active receivers.
        for j in 0..self.net.link_count() {
            let link = LinkId(j);
            if self.ws.link_active[j] == 0 {
                continue;
            }
            let load = self.link_load_at(j, self.level);
            if load < self.net.graph().capacity(link) - RATE_EPS {
                continue;
            }
            for slot in self.ws.index.link_slots(j) {
                let i = self.ws.index.slot_session(slot);
                if self.ws.slot_active[slot] == 0 {
                    continue;
                }
                if !self.session_marginal_on(slot, i) {
                    continue; // free rider: keeps rising under the frozen max
                }
                if self.single_rate(i) {
                    // Freeze the whole session (step 7).
                    for k in 0..self.ws.rates[i].len() {
                        if self.ws.active[i][k] {
                            self.ws.active[i][k] = false;
                            self.ws.reasons[i][k] =
                                Some(if self.ws.index.slot_receivers(slot).contains(&k) {
                                    FreezeReason::Link(link)
                                } else {
                                    FreezeReason::SessionClosure
                                });
                            self.ws.note_freeze(i, k);
                            froze_any = true;
                        }
                    }
                } else {
                    let on_len = self.ws.index.slot_receivers(slot).len();
                    for t in 0..on_len {
                        let k = self.ws.index.slot_receivers(slot)[t];
                        if self.ws.active[i][k] {
                            self.ws.active[i][k] = false;
                            self.ws.reasons[i][k] = Some(FreezeReason::Link(link));
                            self.ws.note_freeze(i, k);
                            froze_any = true;
                        }
                    }
                }
            }
        }

        assert!(
            froze_any,
            "progressive filling made no progress at level {}",
            self.level
        );
    }

    /// Fill the workspace scratch buffer with the slot session's rates if
    /// the level were `ℓ` (frozen rates stay fixed, active ones take `ℓ`).
    fn fill_slot_rates_at(&mut self, slot: usize, i: usize, level: f64) {
        let ws = &mut *self.ws;
        ws.scratch.clear();
        for &k in ws.index.slot_receivers(slot) {
            ws.scratch.push(if ws.active[i][k] {
                level
            } else {
                ws.rates[i][k]
            });
        }
    }

    /// The load `u_j(ℓ)` of link `j` at hypothetical level `ℓ`.
    ///
    /// `Efficient`/`Scaled` sessions read the cached slot aggregates (their
    /// load is a max, which the incremental fold reproduces exactly);
    /// `Sum`/`RandomJoin` sessions rescan their receivers so the
    /// floating-point accumulation keeps the reference's ascending-receiver
    /// order.
    fn link_load_at(&mut self, j: usize, level: f64) -> f64 {
        let mut total = 0.0;
        for slot in self.ws.index.link_slots(j) {
            let i = self.ws.index.slot_session(slot);
            match *self.cfg.model(i) {
                LinkRateModel::Efficient => {
                    let frozen_max = self.ws.slot_frozen_max[slot];
                    total += if self.ws.slot_active[slot] > 0 {
                        frozen_max.max(level.max(0.0))
                    } else {
                        frozen_max
                    };
                }
                LinkRateModel::Scaled(factor) => {
                    let frozen_max = self.ws.slot_frozen_max[slot];
                    let max = if self.ws.slot_active[slot] > 0 {
                        frozen_max.max(level.max(0.0))
                    } else {
                        frozen_max
                    };
                    total += if self.ws.index.slot_len(slot) >= 2 {
                        factor * max
                    } else {
                        max
                    };
                }
                LinkRateModel::Sum | LinkRateModel::RandomJoin { .. } => {
                    self.fill_slot_rates_at(slot, i, level);
                    total += self.cfg.model(i).link_rate(&self.ws.scratch);
                }
            }
        }
        total
    }

    /// Whether raising the level marginally above the current value would
    /// raise the slot session's rate on its link (the free-rider test).
    fn session_marginal_on(&mut self, slot: usize, i: usize) -> bool {
        if self.ws.slot_active[slot] == 0 {
            return false;
        }
        match *self.cfg.model(i) {
            LinkRateModel::Efficient | LinkRateModel::Scaled(_) => {
                // Marginal iff no frozen session-mate on this link holds a
                // higher rate than the level.
                self.level >= self.ws.slot_frozen_max[slot] - RATE_EPS
            }
            LinkRateModel::Sum => true,
            LinkRateModel::RandomJoin { .. } => {
                let delta = (self.level.abs() + 1.0) * 1e-7;
                self.fill_slot_rates_at(slot, i, self.level);
                let now = self.cfg.model(i).link_rate(&self.ws.scratch);
                self.fill_slot_rates_at(slot, i, self.level + delta);
                let bumped = self.cfg.model(i).link_rate(&self.ws.scratch);
                bumped > now + RATE_EPS * delta
            }
        }
    }

    /// The largest level `ℓ ∈ [self.level, upper]` with `u_j(ℓ) ≤ c_j`.
    fn link_saturation_level(&mut self, j: usize, upper: f64) -> f64 {
        let cap = self.net.graph().capacity(LinkId(j));
        // Sessions crossing j: are they all piecewise-linear?
        let linear = self.ws.index.link_slots(j).all(|slot| {
            self.cfg
                .model(self.ws.index.slot_session(slot))
                .is_piecewise_linear()
        });
        if linear {
            self.saturation_level_linear(j, upper, cap)
        } else {
            self.saturation_level_bisect(j, upper, cap)
        }
    }

    /// Exact solve for piecewise-linear loads `u_j(ℓ) = K + Σ w_t·max(b_t, ℓ)`.
    fn saturation_level_linear(&mut self, j: usize, upper: f64, cap: f64) -> f64 {
        let mut constant = 0.0; // K: contributions independent of ℓ
        let ws = &mut *self.ws;
        ws.terms.clear(); // (b_t, w_t)
        for slot in ws.index.link_slots(j) {
            let i = ws.index.slot_session(slot);
            let active_count = ws.slot_active[slot];
            let frozen_sum = ws.slot_frozen_sum[slot];
            let frozen_max = ws.slot_frozen_max[slot];
            match *self.cfg.model(i) {
                LinkRateModel::Efficient => {
                    if active_count > 0 {
                        ws.terms.push((frozen_max, 1.0));
                    } else {
                        constant += frozen_max;
                    }
                }
                LinkRateModel::Scaled(v) => {
                    let w = if ws.index.slot_len(slot) >= 2 { v } else { 1.0 };
                    if active_count > 0 {
                        ws.terms.push((frozen_max, w));
                    } else {
                        constant += w * frozen_max;
                    }
                }
                LinkRateModel::Sum => {
                    constant += frozen_sum;
                    if active_count > 0 {
                        // mlf-lint: allow(as-float-cast, reason = "active_count is bounded by the receiver population, far below 2^53, so the cast is exact")
                        ws.terms.push((0.0, active_count as f64));
                    }
                }
                LinkRateModel::RandomJoin { .. } => {
                    unreachable!("nonlinear sessions route to bisection")
                }
            }
        }
        if ws.terms.is_empty() {
            return upper; // load independent of the level
        }
        // Scan segments between sorted breakpoints.
        ws.breakpoints.clear();
        ws.breakpoints.extend(ws.terms.iter().map(|&(b, _)| b));
        ws.breakpoints.push(self.level);
        ws.breakpoints.push(upper);
        // total_cmp: a NaN rate from an upstream model must not panic the
        // whole sweep mid-solve (NaNs sort last and surface in the output).
        ws.breakpoints.sort_by(f64::total_cmp);
        ws.breakpoints.dedup();
        let terms = &ws.terms;
        let load_at =
            |l: f64| -> f64 { constant + terms.iter().map(|&(b, w)| w * b.max(l)).sum::<f64>() };
        let mut lo = self.level;
        for &bp in ws
            .breakpoints
            .iter()
            .filter(|&&b| b > self.level && b <= upper)
        {
            // Segment [lo, bp]: slope = Σ w over terms with b ≤ lo.
            if load_at(bp) > cap + RATE_EPS {
                // Saturation inside (lo, bp]: solve linearly.
                let slope: f64 = terms
                    .iter()
                    .filter(|&&(b, _)| b <= lo + RATE_EPS)
                    .map(|&(_, w)| w)
                    .sum();
                let base = load_at(lo);
                if slope <= 0.0 {
                    // Load jumped due to a breakpoint exactly at `lo` being
                    // excluded by tolerance; saturate at lo.
                    return lo;
                }
                let l = lo + (cap - base) / slope;
                return l.clamp(lo, bp);
            }
            lo = bp;
        }
        upper // never saturates before the cap
    }

    /// Monotone bisection fallback for nonlinear (RandomJoin) loads.
    fn saturation_level_bisect(&mut self, j: usize, upper: f64, cap: f64) -> f64 {
        let mut lo = self.level;
        if self.link_load_at(j, upper) <= cap + RATE_EPS {
            return upper;
        }
        if self.link_load_at(j, lo) >= cap - RATE_EPS {
            // Already saturated: the level can only advance past this link's
            // constraint if no marginal session remains; conservatively stop
            // here and let the freezing pass sort it out. (For RandomJoin
            // loads there are no flat segments while any session is
            // marginal, so no free-rider ride-through exists to find.)
            return lo;
        }
        let mut hi = upper;
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.link_load_at(j, mid) <= cap {
                lo = mid;
            } else {
                hi = mid;
            }
            if hi - lo < 1e-13 * (1.0 + hi.abs()) {
                break;
            }
        }
        lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocator::{Allocator, Hybrid, MultiRate, SingleRate};
    use mlf_net::{Graph, Session, SessionId, SessionType};

    fn assert_rates(alloc: &Allocation, expected: &[Vec<f64>], tol: f64) {
        for (i, exp) in expected.iter().enumerate() {
            for (k, &e) in exp.iter().enumerate() {
                let got = alloc.rate(ReceiverId::new(i, k));
                assert!(
                    (got - e).abs() <= tol,
                    "r{},{} expected {e}, got {got}",
                    i + 1,
                    k + 1
                );
            }
        }
    }

    #[test]
    fn single_unicast_flow_takes_the_bottleneck() {
        let mut g = Graph::new();
        let n = g.add_nodes(3);
        g.add_link(n[0], n[1], 5.0).unwrap();
        g.add_link(n[1], n[2], 3.0).unwrap();
        let net = Network::new(g, vec![Session::unicast(n[0], n[2])]).unwrap();
        let sol = solve(&net, &LinkRateConfig::efficient(1));
        assert_rates(&sol.allocation, &[vec![3.0]], 1e-9);
        assert_eq!(
            sol.reason(ReceiverId::new(0, 0)),
            FreezeReason::Link(LinkId(1))
        );
    }

    #[test]
    fn two_unicasts_split_a_shared_link_evenly() {
        let mut g = Graph::new();
        let n = g.add_nodes(2);
        g.add_link(n[0], n[1], 8.0).unwrap();
        let net = Network::new(
            g,
            vec![Session::unicast(n[0], n[1]), Session::unicast(n[0], n[1])],
        )
        .unwrap();
        let alloc = Hybrid::as_declared().allocate(&net);
        assert_rates(&alloc, &[vec![4.0], vec![4.0]], 1e-9);
    }

    #[test]
    fn kappa_caps_a_flow_and_releases_bandwidth() {
        let mut g = Graph::new();
        let n = g.add_nodes(2);
        g.add_link(n[0], n[1], 8.0).unwrap();
        let net = Network::new(
            g,
            vec![
                Session::unicast(n[0], n[1]).with_max_rate(1.0),
                Session::unicast(n[0], n[1]),
            ],
        )
        .unwrap();
        let sol = solve(&net, &LinkRateConfig::efficient(2));
        assert_rates(&sol.allocation, &[vec![1.0], vec![7.0]], 1e-9);
        assert_eq!(sol.reason(ReceiverId::new(0, 0)), FreezeReason::MaxRate);
    }

    #[test]
    fn multi_rate_session_lets_receivers_diverge() {
        // sender --10-- hub --4/2-- two receivers: a multi-rate session's
        // receivers take their own bottlenecks.
        let mut g = Graph::new();
        let n = g.add_nodes(4);
        g.add_link(n[0], n[1], 10.0).unwrap();
        g.add_link(n[1], n[2], 4.0).unwrap();
        g.add_link(n[1], n[3], 2.0).unwrap();
        let net = Network::new(g, vec![Session::multi_rate(n[0], vec![n[2], n[3]])]).unwrap();
        let alloc = MultiRate::new().allocate(&net);
        assert_rates(&alloc, &[vec![4.0, 2.0]], 1e-9);
        // The single-rate twin drags everyone to the slowest branch.
        let single = SingleRate::new().allocate(&net);
        assert_rates(&single, &[vec![2.0, 2.0]], 1e-9);
    }

    #[test]
    fn free_rider_rides_a_saturated_link() {
        // Shared link L (cap 6) carries unicast S1 and multi-rate
        // S2 = {r21 (via L + roomy tail), r22 (via L + cap-1 tail)}.
        // r22 freezes at 1 (its tail). L: u = a1 + max(a21, 1): saturates
        // when a1 + a21 = 6 -> both 3.
        let mut g = Graph::new();
        let n = g.add_nodes(4);
        g.add_link(n[0], n[1], 6.0).unwrap(); // L shared
        g.add_link(n[1], n[2], 1.0).unwrap(); // tail to r22
        g.add_link(n[1], n[3], 100.0).unwrap(); // tail to r21
        let net = Network::new(
            g,
            vec![
                Session::unicast(n[0], n[3]),
                Session::multi_rate(n[0], vec![n[3], n[2]]),
            ],
        )
        .unwrap();
        let alloc = Hybrid::as_declared().allocate(&net);
        assert_rates(&alloc, &[vec![3.0], vec![3.0, 1.0]], 1e-9);
    }

    #[test]
    fn free_rider_past_frozen_session_max() {
        // The case that breaks the paper's printed algorithm: a receiver
        // rides a saturated link because its session-mate already pays for
        // a higher session link rate there.
        //   L1 (cap 4): r11 (S1 unicast) + r21 (S2)
        //   L2 (cap 10): r21 + r22 (both S2, multi-rate)
        //   L3 (cap 9): r22 alone
        let mut g = Graph::new();
        let n = g.add_nodes(5);
        let l2 = g.add_link(n[0], n[1], 10.0).unwrap(); // L2 shared by S2
        g.add_link(n[1], n[2], 4.0).unwrap(); // L1: r21 tail shared with r11
        g.add_link(n[1], n[3], 9.0).unwrap(); // L3: r22 tail
        g.add_link(n[0], n[4], 100.0).unwrap();
        let _ = l2;
        let net = Network::new(
            g,
            vec![
                Session::unicast(n[1], n[2]),
                Session::multi_rate(n[0], vec![n[2], n[3]]),
            ],
        )
        .unwrap();
        // L1 (cap 4) carries r11 and r21: saturates at level 2 -> both 2.
        // r22 continues: L2 u = max(2, level) rides to 9 via L3 (cap 9).
        let alloc = Hybrid::as_declared().allocate(&net);
        assert_rates(&alloc, &[vec![2.0]], 1e-9);
        assert_rates(&alloc, &[vec![2.0], vec![2.0, 9.0]], 1e-9);
        // Check L2's load is the session max, not the sum.
        let cfg = LinkRateConfig::efficient(2);
        assert!((alloc.link_rate(&net, &cfg, LinkId(0)) - 9.0).abs() < 1e-9);
    }

    #[test]
    fn single_rate_closure_freezes_whole_session() {
        // Star: S single-rate with branches of caps 2 and 8, plus a unicast
        // sharing the fat branch. S freezes at 2 everywhere; the unicast
        // takes 6.
        let mut g = Graph::new();
        let n = g.add_nodes(4);
        g.add_link(n[0], n[1], 100.0).unwrap();
        g.add_link(n[1], n[2], 2.0).unwrap();
        g.add_link(n[1], n[3], 8.0).unwrap();
        let net = Network::new(
            g,
            vec![
                Session::single_rate(n[0], vec![n[2], n[3]]),
                Session::unicast(n[0], n[3]),
            ],
        )
        .unwrap();
        let sol = solve(&net, &LinkRateConfig::efficient(2));
        assert_rates(&sol.allocation, &[vec![2.0, 2.0], vec![6.0]], 1e-9);
        assert_eq!(
            sol.reason(ReceiverId::new(0, 0)),
            FreezeReason::Link(LinkId(1))
        );
        assert_eq!(
            sol.reason(ReceiverId::new(0, 1)),
            FreezeReason::SessionClosure
        );
    }

    #[test]
    fn scaled_model_shrinks_fair_rates() {
        // Figure 6's single-bottleneck model: n sessions on one link, m of
        // them redundancy v. Rates must equal c / ((n-m) + m v).
        let mut g = Graph::new();
        let a = g.add_node();
        let hub = g.add_node();
        g.add_link(a, hub, 12.0).unwrap();
        // Redundant multi-rate session needs >= 2 receivers crossing the
        // shared link for Scaled to bite: give it two receivers behind hub.
        let r1 = g.add_node();
        let r2 = g.add_node();
        g.add_link(hub, r1, 100.0).unwrap();
        g.add_link(hub, r2, 100.0).unwrap();
        let net = Network::new(
            g,
            vec![
                Session::multi_rate(a, vec![r1, r2]),
                Session::unicast(a, r1),
            ],
        )
        .unwrap();
        // v = 2 for session 0: link load = 2·L + L = 3L = 12 -> L = 4.
        let cfg = LinkRateConfig::efficient(2).with_session(0, LinkRateModel::Scaled(2.0));
        let alloc = Hybrid::as_declared().with_config(cfg).allocate(&net);
        assert_rates(&alloc, &[vec![4.0, 4.0], vec![4.0]], 1e-9);
        // Efficient: 2L = 12 -> 6 each.
        let eff = Hybrid::as_declared().allocate(&net);
        assert_rates(&eff, &[vec![6.0, 6.0], vec![6.0]], 1e-9);
    }

    #[test]
    fn sum_model_behaves_like_unicasts() {
        let mut g = Graph::new();
        let n = g.add_nodes(4);
        g.add_link(n[0], n[1], 9.0).unwrap();
        g.add_link(n[1], n[2], 100.0).unwrap();
        g.add_link(n[1], n[3], 100.0).unwrap();
        let net = Network::new(
            g,
            vec![
                Session::multi_rate(n[0], vec![n[2], n[3]]),
                Session::unicast(n[0], n[2]),
            ],
        )
        .unwrap();
        let cfg = LinkRateConfig::efficient(2).with_session(0, LinkRateModel::Sum);
        let alloc = Hybrid::as_declared().with_config(cfg).allocate(&net);
        // Load on the first hop: a11 + a12 + a2 = 3L = 9.
        assert_rates(&alloc, &[vec![3.0, 3.0], vec![3.0]], 1e-9);
    }

    #[test]
    fn random_join_model_solves_by_bisection() {
        // Two receivers of one session share a link of capacity 1.5 under
        // RandomJoin with σ = 1: u(L) = 1 - (1-L)^2 caps at 1 < 1.5, so both
        // receivers climb to the σ clamp.
        let mut g = Graph::new();
        let n = g.add_nodes(4);
        g.add_link(n[0], n[1], 1.5).unwrap();
        g.add_link(n[1], n[2], 100.0).unwrap();
        g.add_link(n[1], n[3], 100.0).unwrap();
        let net = Network::new(g, vec![Session::multi_rate(n[0], vec![n[2], n[3]])]).unwrap();
        let cfg = LinkRateConfig::uniform(1, LinkRateModel::RandomJoin { sigma: 1.0 });
        let sol = solve(&net, &cfg);
        assert_rates(&sol.allocation, &[vec![1.0, 1.0]], 1e-6);
        assert_eq!(sol.reason(ReceiverId::new(0, 0)), FreezeReason::MaxRate);

        // Tighter link: u(L) = 1 - (1-L)^2 = 0.75 -> L = 0.5.
        let mut g = Graph::new();
        let n = g.add_nodes(4);
        g.add_link(n[0], n[1], 0.75).unwrap();
        g.add_link(n[1], n[2], 100.0).unwrap();
        g.add_link(n[1], n[3], 100.0).unwrap();
        let net = Network::new(g, vec![Session::multi_rate(n[0], vec![n[2], n[3]])]).unwrap();
        let sol = solve(&net, &cfg);
        assert_rates(&sol.allocation, &[vec![0.5, 0.5]], 1e-6);
    }

    #[test]
    fn allocation_is_invariant_to_session_order() {
        // Permuting sessions permutes the allocation accordingly (uniqueness
        // sanity check on a small asymmetric network).
        let mut g = Graph::new();
        let n = g.add_nodes(4);
        g.add_link(n[0], n[1], 5.0).unwrap();
        g.add_link(n[1], n[2], 2.0).unwrap();
        g.add_link(n[1], n[3], 9.0).unwrap();
        let s_a = Session::multi_rate(n[0], vec![n[2], n[3]]);
        let s_b = Session::unicast(n[0], n[3]);
        let net1 = Network::new(g.clone(), vec![s_a.clone(), s_b.clone()]).unwrap();
        let net2 = Network::new(g, vec![s_b, s_a]).unwrap();
        let a1 = Hybrid::as_declared().allocate(&net1);
        let a2 = Hybrid::as_declared().allocate(&net2);
        assert_eq!(a1.rates()[0], a2.rates()[1]);
        assert_eq!(a1.rates()[1], a2.rates()[0]);
    }

    #[test]
    fn result_is_always_feasible_and_saturating() {
        let mut ws = SolverWorkspace::new();
        for seed in 0..30u64 {
            let net = mlf_net::topology::random_network(seed, 12, 4, 4).unwrap();
            let cfg = LinkRateConfig::efficient(net.session_count());
            let sol = solve_in(&net, &cfg, &Regimes::AsDeclared, &mut ws);
            assert!(
                sol.allocation.is_feasible(&net, &cfg),
                "seed {seed}: infeasible: {:?}",
                sol.allocation.feasibility_violation(&net, &cfg)
            );
            // Every receiver is blocked: κ or a saturated link on its path.
            for r in net.receivers() {
                match sol.reason(r) {
                    FreezeReason::MaxRate => {}
                    FreezeReason::Link(l) => {
                        assert!(net.crosses(r, l), "seed {seed}: bottleneck not on path");
                        assert!(
                            sol.allocation.is_fully_utilized(&net, &cfg, l),
                            "seed {seed}: bottleneck link not full"
                        );
                    }
                    FreezeReason::SessionClosure => {
                        assert!(net.session(r.session).kind.is_single_rate());
                    }
                }
            }
        }
    }

    #[test]
    fn mixed_session_types_respect_single_rate_constraint() {
        for seed in 100..120u64 {
            let mut net = mlf_net::topology::random_network(seed, 10, 3, 4).unwrap();
            // Flip session 0 single-rate.
            net = net.with_session_kind(SessionId(0), SessionType::SingleRate);
            let cfg = LinkRateConfig::efficient(net.session_count());
            let alloc = Hybrid::as_declared()
                .with_config(cfg.clone())
                .allocate(&net);
            assert!(alloc.is_feasible(&net, &cfg), "seed {seed}");
            let rs = &alloc.rates()[0];
            for &a in rs {
                assert!((a - rs[0]).abs() < 1e-9, "seed {seed}: single-rate uniform");
            }
        }
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_agree_with_the_trait() {
        for seed in 0..10u64 {
            let net = mlf_net::topology::random_network(seed, 12, 4, 4).unwrap();
            assert_eq!(
                max_min_allocation(&net).rates(),
                Hybrid::as_declared().allocate(&net).rates(),
                "seed {seed}"
            );
            assert_eq!(
                multi_rate_max_min(&net).rates(),
                MultiRate::new().allocate(&net).rates(),
                "seed {seed}"
            );
            assert_eq!(
                single_rate_max_min(&net).rates(),
                SingleRate::new().allocate(&net).rates(),
                "seed {seed}"
            );
        }
    }
}
