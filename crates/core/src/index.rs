//! CSR-style incidence index of a [`Network`] — the solver hot path's view
//! of `R_{i,j}`.
//!
//! The progressive-filling engines repeatedly ask two questions about a
//! network: *which sessions cross link `j`, and with which receivers?* and
//! *which links does receiver `r_{i,k}` traverse?* `Network` can answer
//! both, but only through nested jagged tables whose iteration scans every
//! session per link (most of which do not cross it). [`NetworkIndex`]
//! flattens the incidence structure once per solve into four contiguous
//! arrays:
//!
//! * `link_offsets` / `link_sessions` — for each link, the ids of the
//!   sessions crossing it, in **ascending session order**. One entry of
//!   `link_sessions` is called a *slot*: the `(link, session)` incidence
//!   pair every per-link aggregate in
//!   [`SolverWorkspace`](crate::allocator::SolverWorkspace) is keyed by.
//! * `slot_recv_offsets` / `slot_receivers` — for each slot, the receiver
//!   indices `k ∈ R_{i,j}`, in **ascending receiver order**.
//! * `recv_offsets` — session-major flat numbering of receivers.
//! * `route_offsets` / `route_slots` — for each (flat) receiver, the
//!   `(link, slot)` pairs along its data-path, in route order.
//!
//! The ascending orders are load-bearing: the solvers' floating-point
//! accumulations (frozen-rate sums and maxima, per-link load terms) must
//! fold in exactly the order the pre-index implementations used — session-
//! major, then receiver-major — so the optimized engines stay **bitwise
//! identical** to [`crate::reference`]. The index never reorders anything;
//! it only removes the empty intersections the old loops skipped one
//! `is_empty()` check at a time.
//!
//! All buffers are reused across [`NetworkIndex::rebuild`] calls, so a
//! workspace that solves many same-shaped networks (a sweep) performs no
//! steady-state allocation for indexing.

use mlf_net::{LinkId, Network, SessionId};

/// Flat link→session→receiver and receiver→route incidence arrays of one
/// network (see the [module docs](self) for the layout).
// mlf-lint: allow(unused-pub, reason = "documented public API; doc examples and links are invisible to the analyzer")
#[derive(Debug, Default, Clone)]
pub struct NetworkIndex {
    link_count: usize,
    session_count: usize,
    /// `links + 1` offsets into `link_sessions`.
    link_offsets: Vec<usize>,
    /// Session ids crossing each link, ascending within a link. Indices
    /// into this array are *slot* ids.
    link_sessions: Vec<usize>,
    /// `slots + 1` offsets into `slot_receivers`.
    slot_recv_offsets: Vec<usize>,
    /// Receiver indices `k` of each slot, ascending within a slot.
    slot_receivers: Vec<usize>,
    /// `sessions + 1` offsets assigning session-major flat receiver ids.
    recv_offsets: Vec<usize>,
    /// `flat receivers + 1` offsets into `route_slots`.
    route_offsets: Vec<usize>,
    /// `(link, slot)` pairs along each receiver's data-path, route order.
    route_slots: Vec<(usize, usize)>,
}

impl NetworkIndex {
    /// An empty index (populate with [`NetworkIndex::rebuild`]).
    pub fn new() -> Self {
        NetworkIndex::default()
    }

    /// Rebuild the index for `net`, reusing all buffers.
    pub fn rebuild(&mut self, net: &Network) {
        self.link_count = net.link_count();
        self.session_count = net.session_count();

        self.link_offsets.clear();
        self.link_sessions.clear();
        self.slot_recv_offsets.clear();
        self.slot_receivers.clear();
        self.slot_recv_offsets.push(0);
        for j in 0..self.link_count {
            self.link_offsets.push(self.link_sessions.len());
            for i in 0..self.session_count {
                let on = net.receivers_of_session_on_link(LinkId(j), SessionId(i));
                if on.is_empty() {
                    continue;
                }
                self.link_sessions.push(i);
                self.slot_receivers.extend_from_slice(on);
                self.slot_recv_offsets.push(self.slot_receivers.len());
            }
        }
        self.link_offsets.push(self.link_sessions.len());

        self.recv_offsets.clear();
        let mut flat = 0;
        for s in net.sessions() {
            self.recv_offsets.push(flat);
            flat += s.receivers.len();
        }
        self.recv_offsets.push(flat);

        self.route_offsets.clear();
        self.route_slots.clear();
        for (i, s) in net.sessions().iter().enumerate() {
            for k in 0..s.receivers.len() {
                self.route_offsets.push(self.route_slots.len());
                for &l in net.route(mlf_net::ReceiverId::new(i, k)) {
                    let slot = self
                        .slot_of(l.0, i)
                        // mlf-lint: allow(panic-unwrap, reason = "the slot table was just built from these same routes, so every (link, session) pair resolves")
                        .expect("every route link carries its own session");
                    self.route_slots.push((l.0, slot));
                }
            }
        }
        self.route_offsets.push(self.route_slots.len());
    }

    /// Number of links indexed.
    pub fn link_count(&self) -> usize {
        self.link_count
    }

    /// Number of `(link, session)` incidence slots.
    pub(crate) fn slot_count(&self) -> usize {
        self.link_sessions.len()
    }

    /// Total number of (flat) receivers.
    pub fn receiver_count(&self) -> usize {
        *self.recv_offsets.last().unwrap_or(&0)
    }

    /// The slot range of link `j` (indices into the slot arrays).
    #[inline]
    pub(crate) fn link_slots(&self, j: usize) -> std::ops::Range<usize> {
        self.link_offsets[j]..self.link_offsets[j + 1]
    }

    /// The session a slot belongs to.
    #[inline]
    pub(crate) fn slot_session(&self, slot: usize) -> usize {
        self.link_sessions[slot]
    }

    /// The receiver indices `k ∈ R_{i,j}` of a slot, ascending.
    // mlf-lint: allow(unused-pub, reason = "documented public API; doc examples and links are invisible to the analyzer")
    #[inline]
    pub fn slot_receivers(&self, slot: usize) -> &[usize] {
        &self.slot_receivers[self.slot_recv_offsets[slot]..self.slot_recv_offsets[slot + 1]]
    }

    /// How many receivers a slot holds (`|R_{i,j}|`).
    #[inline]
    pub(crate) fn slot_len(&self, slot: usize) -> usize {
        self.slot_recv_offsets[slot + 1] - self.slot_recv_offsets[slot]
    }

    /// The session-major flat id of receiver `(i, k)`.
    #[inline]
    pub fn flat(&self, i: usize, k: usize) -> usize {
        self.recv_offsets[i] + k
    }

    /// The `(link, slot)` pairs along the data-path of flat receiver `r`.
    // mlf-lint: allow(unused-pub, reason = "documented public API; doc examples and links are invisible to the analyzer")
    #[inline]
    pub fn route_slots(&self, flat: usize) -> &[(usize, usize)] {
        &self.route_slots[self.route_offsets[flat]..self.route_offsets[flat + 1]]
    }

    /// The slot of `(link j, session i)`, if session `i` crosses link `j`.
    pub(crate) fn slot_of(&self, j: usize, i: usize) -> Option<usize> {
        let range = self.link_slots(j);
        self.link_sessions[range.clone()]
            .binary_search(&i)
            .ok()
            .map(|off| range.start + off)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlf_net::topology::random_network_with;
    use mlf_net::{ReceiverId, TopologyFamily};

    /// The index is a faithful, merely flattened, view of the network's own
    /// incidence tables.
    #[test]
    fn index_matches_network_tables() {
        for family in [
            TopologyFamily::FlatTree,
            TopologyFamily::KaryTree { arity: 3 },
            TopologyFamily::TransitStub { transit: 3 },
            TopologyFamily::Dumbbell,
        ] {
            for seed in 0..8u64 {
                let net = random_network_with(family, seed, 16, 5, 4).unwrap();
                let mut idx = NetworkIndex::new();
                idx.rebuild(&net);
                assert_eq!(idx.link_count(), net.link_count());
                assert_eq!(idx.receiver_count(), net.receiver_count());
                for j in 0..net.link_count() {
                    let mut seen_sessions = Vec::new();
                    for slot in idx.link_slots(j) {
                        let i = idx.slot_session(slot);
                        seen_sessions.push(i);
                        assert_eq!(
                            idx.slot_receivers(slot),
                            net.receivers_of_session_on_link(LinkId(j), SessionId(i)),
                            "slot {slot} receivers"
                        );
                        assert_eq!(idx.slot_of(j, i), Some(slot));
                    }
                    // Ascending and exactly the non-empty sessions.
                    assert!(seen_sessions.windows(2).all(|w| w[0] < w[1]));
                    let expected: Vec<usize> = (0..net.session_count())
                        .filter(|&i| {
                            !net.receivers_of_session_on_link(LinkId(j), SessionId(i))
                                .is_empty()
                        })
                        .collect();
                    assert_eq!(seen_sessions, expected);
                }
                // Routes round-trip through the slot ids.
                for r in net.receivers() {
                    let flat = idx.flat(r.session.0, r.index);
                    let links: Vec<usize> = idx.route_slots(flat).iter().map(|&(j, _)| j).collect();
                    let expected: Vec<usize> = net.route(r).iter().map(|l| l.0).collect();
                    assert_eq!(links, expected, "route of {r:?}");
                    for &(j, slot) in idx.route_slots(flat) {
                        assert_eq!(idx.slot_session(slot), r.session.0);
                        assert!(idx.slot_receivers(slot).contains(&r.index));
                        assert!(net.crosses(r, LinkId(j)));
                    }
                }
            }
        }
    }

    /// Rebuilding over differently shaped networks reuses the index
    /// without leaking state from the previous shape.
    #[test]
    fn rebuild_is_idempotent_across_shapes() {
        let a = random_network_with(TopologyFamily::FlatTree, 1, 20, 6, 5).unwrap();
        let b = random_network_with(TopologyFamily::Dumbbell, 2, 8, 2, 2).unwrap();
        let mut idx = NetworkIndex::new();
        idx.rebuild(&a);
        idx.rebuild(&b);
        let mut fresh = NetworkIndex::new();
        fresh.rebuild(&b);
        assert_eq!(idx.slot_count(), fresh.slot_count());
        for j in 0..b.link_count() {
            assert_eq!(idx.link_slots(j), fresh.link_slots(j));
            for slot in idx.link_slots(j) {
                assert_eq!(idx.slot_receivers(slot), fresh.slot_receivers(slot));
            }
        }
        let r = ReceiverId::new(0, 0);
        assert_eq!(
            idx.route_slots(idx.flat(r.session.0, r.index)),
            fresh.route_slots(fresh.flat(r.session.0, r.index))
        );
    }
}
